#include "engine/reachable_runtime.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/views.h"
#include "queries/reference.h"

namespace recnet {
namespace {

RuntimeOptions Opts(ProvMode prov, ShipMode ship = ShipMode::kLazy) {
  RuntimeOptions opts;
  opts.prov = prov;
  opts.ship = ship;
  opts.num_physical = 1000;  // One logical node per physical peer.
  opts.message_budget = 10'000'000;
  return opts;
}

// Compares the distributed view against the centralized oracle.
void ExpectMatchesReference(const ReachableRuntime& rt,
                            const std::vector<LinkTuple>& links) {
  auto expected = ReferenceReachability(rt.num_logical(), links);
  for (int src = 0; src < rt.num_logical(); ++src) {
    EXPECT_EQ(rt.ReachableFrom(src), expected[static_cast<size_t>(src)])
        << "source " << src;
  }
}

// --- The paper's running example (Figures 2, 3, 5) ---------------------------

class PaperExampleTest : public ::testing::TestWithParam<ProvMode> {};

TEST_P(PaperExampleTest, TriangleNetworkComputesFullClosure) {
  // Nodes A=0, B=1, C=2; links A->B, B->C, C->A, C->B (Figure 3).
  ReachableRuntime rt(3, Opts(GetParam()));
  rt.InsertLink(0, 1);
  rt.InsertLink(1, 2);
  rt.InsertLink(2, 0);
  rt.InsertLink(2, 1);
  ASSERT_TRUE(rt.Run());
  // Fully connected: every node reaches every node (paper §3.2).
  for (int a = 0; a < 3; ++a) {
    EXPECT_EQ(rt.ReachableFrom(a), (std::set<int>{0, 1, 2}));
  }
  EXPECT_EQ(rt.ViewSize(), 9u);
}

TEST_P(PaperExampleTest, DeletingRedundantLinkKeepsViewIntact) {
  // Deleting link(C, B) leaves A, B, C still fully connected (paper §3.2:
  // "it is clear that nodes A, B, and C are still connected").
  ReachableRuntime rt(3, Opts(GetParam()));
  rt.InsertLink(0, 1);
  rt.InsertLink(1, 2);
  rt.InsertLink(2, 0);
  rt.InsertLink(2, 1);
  ASSERT_TRUE(rt.Run());
  rt.DeleteLink(2, 1);
  ASSERT_TRUE(rt.Run());
  for (int a = 0; a < 3; ++a) {
    EXPECT_EQ(rt.ReachableFrom(a), (std::set<int>{0, 1, 2}));
  }
}

TEST_P(PaperExampleTest, DeletingBridgeLinkShrinksView) {
  // A -> B -> C chain: deleting A->B removes everything from A.
  ReachableRuntime rt(3, Opts(GetParam()));
  rt.InsertLink(0, 1);
  rt.InsertLink(1, 2);
  ASSERT_TRUE(rt.Run());
  EXPECT_EQ(rt.ReachableFrom(0), (std::set<int>{1, 2}));
  rt.DeleteLink(0, 1);
  ASSERT_TRUE(rt.Run());
  EXPECT_TRUE(rt.ReachableFrom(0).empty());
  EXPECT_EQ(rt.ReachableFrom(1), (std::set<int>{2}));
}

INSTANTIATE_TEST_SUITE_P(AllModes, PaperExampleTest,
                         ::testing::Values(ProvMode::kSet,
                                           ProvMode::kAbsorption,
                                           ProvMode::kRelative));

// --- Message accounting ------------------------------------------------------

TEST(MessageAccountingTest, SetSemanticsShipsSixteenTuples) {
  // Paper §3.2: "In total, 16 tuples (4 initial link tuples, and 12
  // reachable tuples) are shipped during the recursive computation."
  ReachableRuntime rt(3, Opts(ProvMode::kSet));
  rt.InsertLink(0, 1);
  rt.InsertLink(1, 2);
  rt.InsertLink(2, 0);
  rt.InsertLink(2, 1);
  ASSERT_TRUE(rt.Run());
  EXPECT_EQ(rt.Metrics().messages, 16u);
}

TEST(MessageAccountingTest, AbsorptionShipsExtraDerivations) {
  // Absorption provenance must propagate additional non-absorbed
  // derivations (the tuples marked "*" in Figure 2): strictly more ships
  // than set semantics.
  ReachableRuntime rt(3, Opts(ProvMode::kAbsorption, ShipMode::kDirect));
  rt.InsertLink(0, 1);
  rt.InsertLink(1, 2);
  rt.InsertLink(2, 0);
  rt.InsertLink(2, 1);
  ASSERT_TRUE(rt.Run());
  EXPECT_GT(rt.Metrics().messages, 16u);
}

TEST(MessageAccountingTest, LazyShipsNoMoreThanDirect) {
  auto run = [](ShipMode mode) {
    ReachableRuntime rt(3, Opts(ProvMode::kAbsorption, mode));
    rt.InsertLink(0, 1);
    rt.InsertLink(1, 2);
    rt.InsertLink(2, 0);
    rt.InsertLink(2, 1);
    RECNET_CHECK(rt.Run());
    return rt.Metrics().messages;
  };
  EXPECT_LE(run(ShipMode::kLazy), run(ShipMode::kDirect));
}

TEST(MessageAccountingTest, RedundantLinkDeletionIsCheapWithProvenance) {
  // With absorption provenance, deleting link(C, B) requires only kill
  // propagation — far less than DRed's full recomputation.
  ReachableRuntime abs(3, Opts(ProvMode::kAbsorption));
  ReachableRuntime dred(3, Opts(ProvMode::kSet));
  for (ReachableRuntime* rt : {&abs, &dred}) {
    rt->InsertLink(0, 1);
    rt->InsertLink(1, 2);
    rt->InsertLink(2, 0);
    rt->InsertLink(2, 1);
    ASSERT_TRUE(rt->Run());
    rt->ResetMetrics();
    rt->DeleteLink(2, 1);
    ASSERT_TRUE(rt->Run());
  }
  EXPECT_LT(abs.Metrics().messages, dred.Metrics().messages);
}

// --- Randomized equivalence with the oracle ----------------------------------

struct RandomCase {
  ProvMode prov;
  ShipMode ship;
  uint64_t seed;
};

class RandomGraphTest
    : public ::testing::TestWithParam<std::tuple<ProvMode, ShipMode, int>> {};

TEST_P(RandomGraphTest, InsertionsThenDeletionsMatchReference) {
  auto [prov, ship, seed] = GetParam();
  const int n = 8;
  Rng rng(static_cast<uint64_t>(seed) * 7919 + 13);
  ReachableRuntime rt(n, Opts(prov, ship));
  std::vector<LinkTuple> live;

  // Random insertions.
  for (int step = 0; step < 20; ++step) {
    int src = static_cast<int>(rng.NextBounded(n));
    int dst = static_cast<int>(rng.NextBounded(n));
    if (src == dst || rt.HasLink(src, dst)) continue;
    rt.InsertLink(src, dst);
    live.push_back(LinkTuple{src, dst, 1.0});
    ASSERT_TRUE(rt.Run());
  }
  ExpectMatchesReference(rt, live);

  // Random deletions interleaved with occasional re-insertions.
  for (int step = 0; step < 15 && !live.empty(); ++step) {
    if (rng.NextBool(0.3)) {
      int src = static_cast<int>(rng.NextBounded(n));
      int dst = static_cast<int>(rng.NextBounded(n));
      if (src == dst || rt.HasLink(src, dst)) continue;
      rt.InsertLink(src, dst);
      live.push_back(LinkTuple{src, dst, 1.0});
    } else {
      size_t pick = rng.NextBounded(live.size());
      rt.DeleteLink(live[pick].src, live[pick].dst);
      live.erase(live.begin() + static_cast<long>(pick));
    }
    ASSERT_TRUE(rt.Run());
    ExpectMatchesReference(rt, live);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomGraphTest,
    ::testing::Combine(::testing::Values(ProvMode::kSet, ProvMode::kAbsorption,
                                         ProvMode::kRelative),
                       ::testing::Values(ShipMode::kDirect, ShipMode::kEager,
                                         ShipMode::kLazy),
                       ::testing::Values(1, 2, 3)));

// --- Soft-state renewal -------------------------------------------------------

TEST(SoftStateTest, ReinsertionAfterExpiryRestoresView) {
  ReachableRuntime rt(3, Opts(ProvMode::kAbsorption));
  rt.InsertLink(0, 1);
  rt.InsertLink(1, 2);
  ASSERT_TRUE(rt.Run());
  rt.DeleteLink(0, 1);  // Expiry.
  ASSERT_TRUE(rt.Run());
  EXPECT_TRUE(rt.ReachableFrom(0).empty());
  rt.InsertLink(0, 1);  // Renewal allocates a fresh base variable.
  ASSERT_TRUE(rt.Run());
  EXPECT_EQ(rt.ReachableFrom(0), (std::set<int>{1, 2}));
}

TEST(SoftStateTest, DoubleInsertIsIdempotent) {
  ReachableRuntime rt(2, Opts(ProvMode::kAbsorption));
  rt.InsertLink(0, 1);
  rt.InsertLink(0, 1);
  ASSERT_TRUE(rt.Run());
  EXPECT_EQ(rt.ViewSize(), 1u);
  rt.DeleteLink(0, 1);
  ASSERT_TRUE(rt.Run());
  EXPECT_EQ(rt.ViewSize(), 0u);
}

TEST(SoftStateTest, DeleteOfUnknownLinkIsNoOp) {
  ReachableRuntime rt(2, Opts(ProvMode::kAbsorption));
  rt.DeleteLink(0, 1);
  ASSERT_TRUE(rt.Run());
  EXPECT_EQ(rt.ViewSize(), 0u);
}

// --- Public facade ------------------------------------------------------------

TEST(ReachabilityViewTest, QuickstartFlow) {
  RuntimeOptions opts = Opts(ProvMode::kAbsorption);
  ReachabilityView view(4, opts);
  view.InsertLink(0, 1);
  view.InsertLink(1, 2);
  view.InsertLink(2, 3);
  ASSERT_TRUE(view.Apply().ok());
  EXPECT_TRUE(view.IsReachable(0, 3));
  EXPECT_FALSE(view.IsReachable(3, 0));

  auto why = view.Why(0, 3);
  ASSERT_TRUE(why.has_value());
  EXPECT_EQ(why->size(), 3u);  // The three chain links.

  view.DeleteLink(1, 2);
  ASSERT_TRUE(view.Apply().ok());
  EXPECT_FALSE(view.IsReachable(0, 3));
}

TEST(ReachabilityViewTest, BudgetExceededSurfacesAsError) {
  RuntimeOptions opts = Opts(ProvMode::kAbsorption);
  opts.message_budget = 2;  // Absurdly small.
  ReachabilityView view(4, opts);
  view.InsertLink(0, 1);
  view.InsertLink(1, 2);
  view.InsertLink(2, 0);
  Status status = view.Apply();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

// --- Provenance diagnostics ----------------------------------------------------

TEST(ProvenanceDiagnosticsTest, ViewProvenanceReflectsRedundancy) {
  ReachableRuntime rt(3, Opts(ProvMode::kAbsorption));
  rt.InsertLink(0, 1);
  rt.InsertLink(1, 2);
  rt.InsertLink(0, 2);
  ASSERT_TRUE(rt.Run());
  const Prov* pv = rt.ViewProvenance(0, 2);
  ASSERT_NE(pv, nullptr);
  // reachable(0,2) holds via 0->2 directly and via 0->1->2: two witnesses.
  std::vector<bdd::Var> support;
  pv->SupportVars(&support);
  EXPECT_EQ(support.size(), 3u);
}

}  // namespace
}  // namespace recnet
