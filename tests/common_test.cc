#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/value.h"

namespace recnet {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arity");
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(StatusTest, AllCodesRender) {
  EXPECT_EQ(Status::NotFound("x").ToString(), "NotFound: x");
  EXPECT_EQ(Status::AlreadyExists("x").ToString(), "AlreadyExists: x");
  EXPECT_EQ(Status::OutOfRange("x").ToString(), "OutOfRange: x");
  EXPECT_EQ(Status::Unimplemented("x").ToString(), "Unimplemented: x");
  EXPECT_EQ(Status::Internal("x").ToString(), "Internal: x");
  EXPECT_EQ(Status::ResourceExhausted("x").ToString(),
            "ResourceExhausted: x");
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(StatusOrTest, ValueAndError) {
  StatusOr<int> good = ParsePositive(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 7);
  StatusOr<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ValueTest, TypesAndEquality) {
  Value i(int64_t{42});
  Value d(2.5);
  Value s(std::string("hello"));
  EXPECT_TRUE(i.is_int());
  EXPECT_TRUE(d.is_double());
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(i.AsInt(), 42);
  EXPECT_EQ(d.AsDouble(), 2.5);
  EXPECT_EQ(s.AsString(), "hello");
  EXPECT_EQ(i, Value(int64_t{42}));
  EXPECT_NE(i.Hash(), s.Hash());
  EXPECT_EQ(i.ToString(), "42");
  EXPECT_EQ(s.ToString(), "hello");
}

TEST(ValueTest, WireSize) {
  EXPECT_EQ(Value(int64_t{1}).WireSizeBytes(), 8u);
  EXPECT_EQ(Value(1.0).WireSizeBytes(), 8u);
  EXPECT_EQ(Value(std::string("abcd")).WireSizeBytes(), 8u);
}

TEST(TupleTest, Basics) {
  Tuple t = Tuple::OfInts({1, 2, 3});
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.IntAt(1), 2);
  EXPECT_EQ(t.ToString(), "(1,2,3)");
  EXPECT_EQ(t, Tuple::OfInts({1, 2, 3}));
  EXPECT_NE(t, Tuple::OfInts({1, 2, 4}));
  EXPECT_LT(Tuple::OfInts({1, 2}), Tuple::OfInts({1, 3}));
}

TEST(TupleTest, HashDistinguishesOrder) {
  EXPECT_NE(Tuple::OfInts({1, 2}).Hash(), Tuple::OfInts({2, 1}).Hash());
}

TEST(TupleTest, WireSizeSumsValues) {
  Tuple t = Tuple::OfInts({1, 2});
  EXPECT_EQ(t.WireSizeBytes(), 2u + 16u);
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace recnet
