// Session persistence coverage. The contract under test: a session restored
// from a checkpoint is indistinguishable from one that never stopped —
// every post-restore Apply/Scan result and every per-view network counter
// is bit-identical to an uninterrupted control session, across all
// ProvModes, maintenance strategies, and shard counts. Plus the rest of the
// tenant lifecycle: corrupt/truncated/version-skewed snapshots fail with
// typed errors, Checkpoint refuses undrained queues, RemoveProgram returns
// the BDD manager to its pre-AddProgram footprint without perturbing
// co-resident views, and per-view message budgets are enforced per tenant
// inside one shared drain.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bdd/bdd.h"
#include "common/rng.h"
#include "engine/session.h"
#include "persist/codec.h"
#include "persist/snapshot.h"
#include "persist/wire.h"
#include "topology/sensor_grid.h"

namespace recnet {
namespace {

constexpr char kReachable[] = R"(
  reachable(x,y) :- edge(x,y).
  reachable(x,y) :- edge(x,z), reachable(z,y).
  fanout(x,count<y>) :- reachable(x,y).
)";

constexpr char kSpan[] = R"(
  span(x,y) :- edge(x,y).
  span(x,y) :- span(x,z), edge(z,y).
)";

constexpr char kShortestPath[] = R"(
  path(x,y,c) :- link(x,y,c).
  path(x,y,c) :- link(x,z,c), path(z,y,c2).
  minCost(x,y,min<c>) :- path(x,y,c).
)";

constexpr char kRegion[] = R"(
  activeRegion(r,x) :- seed(r,x), triggered(x).
  activeRegion(r,y) :- activeRegion(r,x), triggered(x), near(x,y).
  regionSizes(r,count<x>) :- activeRegion(r,x).
)";

constexpr int kNodes = 12;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

SensorField TestField() {
  SensorGridOptions grid;
  grid.grid_dim = 4;
  grid.num_seeds = 2;
  grid.seed = 7;
  return MakeSensorGrid(grid);
}

struct Strategy {
  const char* name;
  ProvMode prov;
  ShipMode ship;
};

const Strategy kStrategies[] = {
    {"DRed", ProvMode::kSet, ShipMode::kDirect},
    {"AbsorptionLazy", ProvMode::kAbsorption, ShipMode::kLazy},
    {"AbsorptionEager", ProvMode::kAbsorption, ShipMode::kEager},
    {"RelativeLazy", ProvMode::kRelative, ShipMode::kLazy},
    {"RelativeEager", ProvMode::kRelative, ShipMode::kEager},
};

const int kShardCounts[] = {1, 2, 4};

SessionOptions SharedOptions(int shards) {
  SessionOptions options;
  options.num_nodes = kNodes;
  options.num_physical = 4;
  options.shards = shards;
  return options;
}

EngineOptions GraphOptions(const Strategy& strategy) {
  EngineOptions options;
  options.num_nodes = kNodes;
  options.runtime.prov = strategy.prov;
  options.runtime.ship = strategy.ship;
  options.runtime.batch_window = 16;
  options.runtime.num_physical = 4;
  return options;
}

// Seed-deterministic mutation stream, split into a pre-checkpoint and a
// post-checkpoint phase so the snapshot lands mid-workload.
struct Workload {
  std::vector<std::pair<int, int>> phase1_inserts;
  std::vector<std::pair<int, int>> phase2_inserts;
  std::vector<std::pair<int, int>> phase2_deletes;
};

Workload MakeWorkload(uint64_t seed) {
  Rng rng(seed);
  Workload w;
  for (int i = 0; i < kNodes; ++i) {
    w.phase1_inserts.push_back({i, (i + 1) % kNodes});
    if (i % 3 == 0) w.phase1_inserts.push_back({i, (i + 5) % kNodes});
  }
  for (int i = 0; i < 6; ++i) {
    w.phase2_inserts.push_back(
        {static_cast<int>(rng.NextBounded(kNodes)),
         static_cast<int>(rng.NextBounded(kNodes - 1)) + 1});
  }
  for (const auto& link : w.phase1_inserts) {
    if (rng.NextBool(0.3)) w.phase2_deletes.push_back(link);
  }
  return w;
}

void RunPhase1(Session* session, const Workload& w) {
  for (const auto& [src, dst] : w.phase1_inserts) {
    ASSERT_TRUE(session->Insert("edge", {double(src), double(dst)}).ok());
  }
  ASSERT_TRUE(session->Apply().ok());
}

void RunPhase2(Session* session, const Workload& w) {
  for (const auto& [src, dst] : w.phase2_inserts) {
    ASSERT_TRUE(session->Insert("edge", {double(src), double(dst)}).ok());
  }
  ASSERT_TRUE(session->Apply().ok());
  for (const auto& [src, dst] : w.phase2_deletes) {
    ASSERT_TRUE(session->Delete("edge", {double(src), double(dst)}).ok());
  }
  ASSERT_TRUE(session->Apply().ok());
}

// Everything observable about one view: scans of every (sub)view named,
// plus the full per-namespace router counters.
struct ViewObservation {
  std::vector<std::vector<Tuple>> scans;
  RunMetrics metrics;
};

ViewObservation Observe(const View* view,
                        const std::vector<std::string>& scan_names) {
  ViewObservation obs;
  for (const std::string& name : scan_names) {
    auto rows = view->Scan(name);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    obs.scans.push_back(rows.ok() ? rows.value() : std::vector<Tuple>());
  }
  obs.metrics = view->Metrics();
  return obs;
}

void ExpectObservationsEqual(const ViewObservation& got,
                             const ViewObservation& want, const char* label) {
  ASSERT_EQ(got.scans.size(), want.scans.size()) << label;
  for (size_t i = 0; i < got.scans.size(); ++i) {
    EXPECT_EQ(got.scans[i], want.scans[i]) << label << " scan " << i;
  }
  EXPECT_EQ(got.metrics.messages, want.metrics.messages) << label;
  EXPECT_EQ(got.metrics.kill_messages, want.metrics.kill_messages) << label;
  EXPECT_EQ(got.metrics.batches, want.metrics.batches) << label;
  EXPECT_DOUBLE_EQ(got.metrics.comm_mb, want.metrics.comm_mb) << label;
  EXPECT_DOUBLE_EQ(got.metrics.per_tuple_prov_bytes,
                   want.metrics.per_tuple_prov_bytes)
      << label;
}

class PersistParityTest : public ::testing::TestWithParam<Strategy> {};

INSTANTIATE_TEST_SUITE_P(AllStrategies, PersistParityTest,
                         ::testing::ValuesIn(kStrategies),
                         [](const ::testing::TestParamInfo<Strategy>& info) {
                           return info.param.name;
                         });

// The tentpole acceptance bar: checkpoint a two-view session mid-workload,
// restore it into a fresh session, resume the mutation stream, and every
// scan and counter matches an uninterrupted control — for every maintenance
// strategy and shard count.
TEST_P(PersistParityTest, RoundTripIsBitIdentical) {
  const Strategy strategy = GetParam();
  const Workload w =
      MakeWorkload(0x5eed + static_cast<uint64_t>(strategy.prov));
  const std::vector<std::string> reach_views = {"reachable", "fanout"};
  const std::vector<std::string> span_views = {"span"};

  for (int shards : kShardCounts) {
    SCOPED_TRACE(testing::Message() << strategy.name << " shards=" << shards);
    const std::string path = TempPath("roundtrip.ckpt");

    // Control: both phases, no interruption.
    Session control(SharedOptions(shards));
    auto c_reach = control.AddProgram(kReachable, GraphOptions(strategy));
    auto c_span = control.AddProgram(kSpan, GraphOptions(strategy));
    ASSERT_TRUE(c_reach.ok() && c_span.ok());
    RunPhase1(&control, w);
    RunPhase2(&control, w);

    // Checkpointed session: phase 1, snapshot, teardown.
    {
      Session session(SharedOptions(shards));
      auto reach = session.AddProgram(kReachable, GraphOptions(strategy));
      auto span = session.AddProgram(kSpan, GraphOptions(strategy));
      ASSERT_TRUE(reach.ok() && span.ok());
      RunPhase1(&session, w);
      Status st = session.Checkpoint(path);
      ASSERT_TRUE(st.ok()) << st.ToString();
    }

    // Restore into a virgin session and resume phase 2.
    Session restored(SharedOptions(shards));
    Status st = restored.Restore(path);
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_EQ(restored.num_views(), 2u);
    RunPhase2(&restored, w);

    ExpectObservationsEqual(Observe(restored.view(0), reach_views),
                            Observe(*c_reach, reach_views), "reachable");
    ExpectObservationsEqual(Observe(restored.view(1), span_views),
                            Observe(*c_span, span_views), "span");
  }
}

// Cross-shard restore: a snapshot taken on a single-shard session restores
// onto a sharded one (and vice versa) with the same bit-identical
// trajectory — delivery is shard-count invariant, so the persisted form is
// too.
TEST(PersistTest, RestoreAcrossShardCounts) {
  const Strategy strategy{"AbsorptionLazy", ProvMode::kAbsorption,
                          ShipMode::kLazy};
  const Workload w = MakeWorkload(99);
  const std::string path = TempPath("crossshard.ckpt");

  Session control(SharedOptions(1));
  auto c_reach = control.AddProgram(kReachable, GraphOptions(strategy));
  ASSERT_TRUE(c_reach.ok());
  RunPhase1(&control, w);
  RunPhase2(&control, w);

  {
    Session session(SharedOptions(1));
    ASSERT_TRUE(session.AddProgram(kReachable, GraphOptions(strategy)).ok());
    RunPhase1(&session, w);
    ASSERT_TRUE(session.Checkpoint(path).ok());
  }

  for (int shards : {2, 4}) {
    SCOPED_TRACE(shards);
    Session restored(SharedOptions(shards));
    Status st = restored.Restore(path);
    ASSERT_TRUE(st.ok()) << st.ToString();
    RunPhase2(&restored, w);
    ExpectObservationsEqual(Observe(restored.view(0), {"reachable", "fanout"}),
                            Observe(*c_reach, {"reachable", "fanout"}),
                            "reachable");
  }
}

// Shortest-path and region views round-trip too: operator state includes
// aggregate selections, group-by counts, and the deployment-bound sensor
// field (which must be re-encoded through EngineOptions).
TEST(PersistTest, ShortestPathAndRegionRoundTrip) {
  const std::string path = TempPath("mixed.ckpt");
  SensorField field = TestField();
  EngineOptions path_options;
  path_options.num_nodes = kNodes;
  path_options.runtime.num_physical = 4;
  EngineOptions region_options;
  region_options.field = field;
  region_options.runtime.num_physical = 4;

  auto build = [&](Session* session) {
    ASSERT_TRUE(session->AddProgram(kShortestPath, path_options).ok());
    ASSERT_TRUE(session->AddProgram(kRegion, region_options).ok());
  };
  auto phase1 = [](Session* session) {
    for (int i = 0; i < kNodes; ++i) {
      ASSERT_TRUE(session
                      ->Insert("link", {double(i), double((i + 1) % kNodes),
                                        1.0 + i % 3})
                      .ok());
    }
    ASSERT_TRUE(session->Insert("triggered", {0}).ok());
    ASSERT_TRUE(session->Insert("triggered", {1}).ok());
    ASSERT_TRUE(session->Apply().ok());
  };
  auto phase2 = [](Session* session) {
    ASSERT_TRUE(session->Insert("link", {0, 7, 0.5}).ok());
    ASSERT_TRUE(session->Insert("triggered", {4}).ok());
    ASSERT_TRUE(session->Apply().ok());
    ASSERT_TRUE(session->Delete("link", {3, 4}).ok());
    ASSERT_TRUE(session->Delete("triggered", {1}).ok());
    ASSERT_TRUE(session->Apply().ok());
  };

  Session control(SharedOptions(1));
  build(&control);
  phase1(&control);
  phase2(&control);

  {
    Session session(SharedOptions(1));
    build(&session);
    phase1(&session);
    ASSERT_TRUE(session.Checkpoint(path).ok());
  }

  Session restored(SharedOptions(1));
  Status st = restored.Restore(path);
  ASSERT_TRUE(st.ok()) << st.ToString();
  phase2(&restored);

  ExpectObservationsEqual(Observe(restored.view(0), {"path", "minCost"}),
                          Observe(control.view(0), {"path", "minCost"}),
                          "path");
  ExpectObservationsEqual(
      Observe(restored.view(1), {"activeRegion", "regionSizes"}),
      Observe(control.view(1), {"activeRegion", "regionSizes"}), "region");
}

// Soft-state deadlines survive the round trip: a TTL fact checkpointed
// mid-window expires at the same clock tick in the restored session.
TEST(PersistTest, SoftStateClockRoundTrip) {
  const std::string path = TempPath("ttl.ckpt");
  const Strategy strategy{"AbsorptionLazy", ProvMode::kAbsorption,
                          ShipMode::kLazy};

  auto epilogue = [](Session* session) {
    ASSERT_TRUE(session->AdvanceTime(5.0).ok());  // Expires edge(0,5).
    ASSERT_TRUE(session->Apply().ok());
  };

  Session control(SharedOptions(1));
  ASSERT_TRUE(control.AddProgram(kReachable, GraphOptions(strategy)).ok());
  ASSERT_TRUE(control.Insert("edge", {0, 1}).ok());
  ASSERT_TRUE(control.Insert("edge", {1, 2}).ok());
  ASSERT_TRUE(
      control.InsertWithTtl("edge", Tuple({Value(int64_t{0}),
                                           Value(int64_t{5})}), 4.0)
          .ok());
  ASSERT_TRUE(control.Apply().ok());
  epilogue(&control);

  {
    Session session(SharedOptions(1));
    ASSERT_TRUE(session.AddProgram(kReachable, GraphOptions(strategy)).ok());
    ASSERT_TRUE(session.Insert("edge", {0, 1}).ok());
    ASSERT_TRUE(session.Insert("edge", {1, 2}).ok());
    ASSERT_TRUE(
        session.InsertWithTtl("edge", Tuple({Value(int64_t{0}),
                                             Value(int64_t{5})}), 4.0)
            .ok());
    ASSERT_TRUE(session.Apply().ok());
    ASSERT_TRUE(session.Checkpoint(path).ok());
  }

  Session restored(SharedOptions(1));
  ASSERT_TRUE(restored.Restore(path).ok());
  EXPECT_EQ(restored.now(), 0.0);
  epilogue(&restored);

  ExpectObservationsEqual(Observe(restored.view(0), {"reachable"}),
                          Observe(control.view(0), {"reachable"}),
                          "reachable after expiry");
}

// The inspector surface: the summary block describes the session without
// decoding operator state.
TEST(PersistTest, SnapshotSummaryDescribesTheSession) {
  const std::string path = TempPath("summary.ckpt");
  const Strategy relative{"RelativeLazy", ProvMode::kRelative,
                          ShipMode::kLazy};
  // Relative provenance interns no BDD nodes; give the second view
  // absorption provenance so the serialized node table is non-trivial.
  const Strategy absorption{"AbsorptionLazy", ProvMode::kAbsorption,
                            ShipMode::kLazy};
  Session session(SharedOptions(2));
  ASSERT_TRUE(session.AddProgram(kReachable, GraphOptions(relative)).ok());
  ASSERT_TRUE(session.AddProgram(kSpan, GraphOptions(absorption)).ok());
  ASSERT_TRUE(session.Insert("edge", {0, 1}).ok());
  ASSERT_TRUE(session.Insert("edge", {1, 2}).ok());
  ASSERT_TRUE(session.Delete("edge", {1, 2}).ok());
  ASSERT_TRUE(session.Apply().ok());
  ASSERT_TRUE(session.Checkpoint(path).ok());

  persist::SnapshotHeader header;
  persist::SnapshotSummary summary;
  Status st = persist::InspectSnapshot(path, /*verify=*/true, &header,
                                       &summary);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(summary.num_nodes, kNodes);
  EXPECT_EQ(summary.num_physical, 4);
  EXPECT_EQ(summary.shards, 2);
  EXPECT_GT(summary.bdd_nodes, 0u);
  ASSERT_EQ(summary.relations.size(), 1u);
  EXPECT_EQ(summary.relations[0].name, "edge");
  EXPECT_EQ(summary.relations[0].arity, 2u);
  EXPECT_EQ(summary.relations[0].live_facts, 1u);  // (1,2) was deleted.
  ASSERT_EQ(summary.views.size(), 2u);
  EXPECT_EQ(summary.views[0].name, "reachable");
  EXPECT_EQ(summary.views[0].prov_mode, "relative");
  EXPECT_EQ(summary.views[1].name, "span");
  EXPECT_EQ(summary.views[1].prov_mode, "absorption");
  EXPECT_GT(summary.views[0].messages, 0u);
}

// --- Typed failure modes ----------------------------------------------------

class PersistCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("corrupt.ckpt");
    Strategy strategy{"AbsorptionLazy", ProvMode::kAbsorption,
                      ShipMode::kLazy};
    Session session(SharedOptions(1));
    ASSERT_TRUE(session.AddProgram(kReachable, GraphOptions(strategy)).ok());
    ASSERT_TRUE(session.Insert("edge", {0, 1}).ok());
    ASSERT_TRUE(session.Insert("edge", {1, 2}).ok());
    ASSERT_TRUE(session.Apply().ok());
    ASSERT_TRUE(session.Checkpoint(path_).ok());
    std::ifstream in(path_, std::ios::binary);
    ASSERT_TRUE(in.good());
    bytes_.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    ASSERT_GT(bytes_.size(), 64u);
  }

  void WriteBack(const std::vector<char>& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  StatusCode RestoreCode() {
    Session session(SharedOptions(1));
    return session.Restore(path_).code();
  }

  std::string path_;
  std::vector<char> bytes_;
};

TEST_F(PersistCorruptionTest, MissingFileIsNotFound) {
  Session session(SharedOptions(1));
  EXPECT_EQ(session.Restore(TempPath("no-such.ckpt")).code(),
            StatusCode::kNotFound);
}

TEST_F(PersistCorruptionTest, TruncationIsDataLoss) {
  std::vector<char> truncated(bytes_.begin(),
                              bytes_.begin() + bytes_.size() / 2);
  WriteBack(truncated);
  EXPECT_EQ(RestoreCode(), StatusCode::kDataLoss);
  // Truncated into the header itself: still DataLoss, never a crash.
  truncated.resize(10);
  WriteBack(truncated);
  EXPECT_EQ(RestoreCode(), StatusCode::kDataLoss);
}

TEST_F(PersistCorruptionTest, BitFlipIsDataLoss) {
  std::vector<char> flipped = bytes_;
  flipped[flipped.size() - 9] ^= 0x40;  // Inside the payload.
  WriteBack(flipped);
  EXPECT_EQ(RestoreCode(), StatusCode::kDataLoss);
}

TEST_F(PersistCorruptionTest, VersionSkewIsInvalidArgument) {
  std::vector<char> skewed = bytes_;
  skewed[8] = 99;  // Header layout: magic u64, then version u32.
  WriteBack(skewed);
  EXPECT_EQ(RestoreCode(), StatusCode::kInvalidArgument);
}

TEST_F(PersistCorruptionTest, WrongMagicIsInvalidArgument) {
  std::vector<char> wrong = bytes_;
  wrong[0] ^= 0xff;
  WriteBack(wrong);
  EXPECT_EQ(RestoreCode(), StatusCode::kInvalidArgument);
}

// Byte-level fuzz, part 1: truncating the container at EVERY offset must
// yield a typed error — the header probe, the size check, or the checksum
// catches it — and never a crash, hang, or sanitizer report.
TEST_F(PersistCorruptionTest, TruncationAtEveryOffsetIsTyped) {
  for (size_t n = 0; n < bytes_.size(); ++n) {
    WriteBack(std::vector<char>(bytes_.begin(),
                                bytes_.begin() + static_cast<long>(n)));
    std::vector<uint8_t> payload;
    Status st = persist::ReadSnapshotPayload(path_, &payload);
    ASSERT_FALSE(st.ok()) << "truncation to " << n << " bytes went unnoticed";
    ASSERT_TRUE(st.code() == StatusCode::kDataLoss ||
                st.code() == StatusCode::kInvalidArgument)
        << "offset " << n << ": " << st.ToString();
  }
}

// Byte-level fuzz, part 2: seeded single-bit flips anywhere in the file.
// The checksum covers the payload and the header fields are validated, so
// every flip must surface as DataLoss or InvalidArgument — from the raw
// container read AND from the full Session::Restore path.
TEST_F(PersistCorruptionTest, BitFlipFuzzIsTyped) {
  Rng rng(0xf1a9);
  for (int trial = 0; trial < 128; ++trial) {
    std::vector<char> flipped = bytes_;
    size_t at = static_cast<size_t>(rng.NextBounded(flipped.size()));
    flipped[at] ^= static_cast<char>(1u << rng.NextBounded(8));
    WriteBack(flipped);
    std::vector<uint8_t> payload;
    Status st = persist::ReadSnapshotPayload(path_, &payload);
    ASSERT_FALSE(st.ok()) << "flip at byte " << at << " went unnoticed";
    ASSERT_TRUE(st.code() == StatusCode::kDataLoss ||
                st.code() == StatusCode::kInvalidArgument)
        << "byte " << at << ": " << st.ToString();
    StatusCode restore = RestoreCode();
    ASSERT_TRUE(restore == StatusCode::kDataLoss ||
                restore == StatusCode::kInvalidArgument)
        << "byte " << at;
  }
}

// Crash-atomic writes: WriteSnapshotFile stages into `<path>.tmp` and
// renames only once complete, so an interrupted write never leaves a
// partial file at the target.
TEST(PersistTest, WriteSnapshotFileIsCrashAtomic) {
  const std::string path = TempPath("atomic.snap");
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  auto file_size = [](const std::string& p) -> long {
    std::ifstream in(p, std::ios::binary | std::ios::ate);
    return in.good() ? static_cast<long>(in.tellg()) : -1;
  };

  persist::Writer payload;
  for (uint32_t i = 0; i < 64; ++i) payload.U32(i);
  const size_t total = persist::kSnapshotHeaderBytes + payload.bytes().size();

  // Tears at every interesting boundary: nothing written, mid-header,
  // mid-payload, one byte short. The target never appears; the tmp holds
  // exactly the torn prefix.
  for (size_t tear : {size_t{0}, size_t{1}, persist::kSnapshotHeaderBytes - 1,
                      persist::kSnapshotHeaderBytes + 1, total - 1}) {
    Status st = persist::WriteSnapshotFile(path, payload, tear);
    EXPECT_EQ(st.code(), StatusCode::kUnavailable) << "tear " << tear;
    EXPECT_EQ(file_size(path), -1) << "tear " << tear << " touched the target";
    EXPECT_EQ(file_size(path + ".tmp"), static_cast<long>(tear));
  }

  // The complete write lands and consumes the tmp.
  Status st = persist::WriteSnapshotFile(path, payload);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(file_size(path), static_cast<long>(total));
  EXPECT_EQ(file_size(path + ".tmp"), -1);

  std::vector<uint8_t> read_back;
  ASSERT_TRUE(persist::ReadSnapshotPayload(path, &read_back).ok());
  EXPECT_EQ(read_back, payload.bytes());
  std::remove(path.c_str());
}

TEST(PersistTest, CheckpointRequiresDrainedQueue) {
  const Strategy strategy{"AbsorptionLazy", ProvMode::kAbsorption,
                          ShipMode::kLazy};
  Session session(SharedOptions(1));
  ASSERT_TRUE(session.AddProgram(kReachable, GraphOptions(strategy)).ok());
  ASSERT_TRUE(session.Insert("edge", {0, 1}).ok());
  // No Apply(): the insertion is still queued.
  EXPECT_EQ(session.Checkpoint(TempPath("pending.ckpt")).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(session.Apply().ok());
  EXPECT_TRUE(session.Checkpoint(TempPath("pending.ckpt")).ok());
}

TEST(PersistTest, RestoreRequiresVirginSession) {
  const Strategy strategy{"AbsorptionLazy", ProvMode::kAbsorption,
                          ShipMode::kLazy};
  const std::string path = TempPath("virgin.ckpt");
  {
    Session session(SharedOptions(1));
    ASSERT_TRUE(session.AddProgram(kReachable, GraphOptions(strategy)).ok());
    ASSERT_TRUE(session.Checkpoint(path).ok());
  }
  Session occupied(SharedOptions(1));
  ASSERT_TRUE(occupied.AddProgram(kSpan, GraphOptions(strategy)).ok());
  EXPECT_EQ(occupied.Restore(path).code(), StatusCode::kFailedPrecondition);
}

TEST(PersistTest, RestoreRejectsDeploymentMismatch) {
  const Strategy strategy{"AbsorptionLazy", ProvMode::kAbsorption,
                          ShipMode::kLazy};
  const std::string path = TempPath("deploy.ckpt");
  {
    Session session(SharedOptions(1));
    ASSERT_TRUE(session.AddProgram(kReachable, GraphOptions(strategy)).ok());
    ASSERT_TRUE(session.Checkpoint(path).ok());
  }
  SessionOptions other;
  other.num_nodes = kNodes;
  other.num_physical = 7;  // Snapshot says 4.
  Session mismatched(other);
  EXPECT_EQ(mismatched.Restore(path).code(), StatusCode::kInvalidArgument);
}

// --- Tenant lifecycle -------------------------------------------------------

// RemoveProgram returns the BDD manager to its pre-AddProgram footprint and
// leaves the co-resident view's state (scans, counters, future runs)
// untouched.
TEST(PersistTest, RemoveProgramReclaimsAndDoesNotPerturb) {
  const Strategy strategy{"AbsorptionLazy", ProvMode::kAbsorption,
                          ShipMode::kLazy};
  Session session(SharedOptions(1));
  auto reach = session.AddProgram(kReachable, GraphOptions(strategy));
  ASSERT_TRUE(reach.ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(session.Insert("edge", {double(i), double(i + 1)}).ok());
  }
  ASSERT_TRUE(session.Apply().ok());

  bdd::Manager* manager = session.substrate()->bdd_manager();
  manager->GarbageCollect();
  const size_t baseline = manager->live_nodes();
  auto before = Observe(*reach, {"reachable", "fanout"});

  // The tenant: a second view that replays the shared EDB (allocating its
  // own base variables and provenance annotations) and runs to fixpoint.
  auto span = session.AddProgram(kSpan, GraphOptions(strategy));
  ASSERT_TRUE(span.ok());
  ASSERT_TRUE(session.Apply().ok());
  EXPECT_GT(manager->live_nodes(), baseline);

  ASSERT_TRUE(session.RemoveProgram(*span).ok());
  EXPECT_EQ(session.num_views(), 1u);
  EXPECT_EQ(manager->live_nodes(), baseline);

  // Double removal: the handle is gone.
  EXPECT_EQ(session.RemoveProgram(*span).code(), StatusCode::kNotFound);

  // The surviving view is unperturbed, and the session keeps working —
  // including the shared EDB store (a later program still sees the facts).
  ExpectObservationsEqual(Observe(*reach, {"reachable", "fanout"}), before,
                          "surviving view");
  ASSERT_TRUE(session.Insert("edge", {7, 8}).ok());
  ASSERT_TRUE(session.Apply().ok());
  auto again = session.AddProgram(kSpan, GraphOptions(strategy));
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(session.Apply().ok());
  auto rows = (*again)->Scan("span");
  ASSERT_TRUE(rows.ok());
  EXPECT_GT(rows->size(), 0u);
}

// A removed tenant's soft-state deadlines must not poison the clock: their
// expiry after removal is a no-op, not an error.
TEST(PersistTest, RemoveProgramToleratesOrphanedTtlFacts) {
  const Strategy strategy{"AbsorptionLazy", ProvMode::kAbsorption,
                          ShipMode::kLazy};
  Session session(SharedOptions(1));
  auto reach = session.AddProgram(kReachable, GraphOptions(strategy));
  ASSERT_TRUE(reach.ok());
  auto path = session.AddProgram(kShortestPath, GraphOptions(strategy));
  ASSERT_TRUE(path.ok());
  ASSERT_TRUE(session
                  .InsertWithTtl("link",
                                 Tuple({Value(int64_t{0}), Value(int64_t{1}),
                                        Value(2.0)}),
                                 3.0)
                  .ok());
  ASSERT_TRUE(session.Apply().ok());
  ASSERT_TRUE(session.RemoveProgram(*path).ok());
  // Only the removed view declared `link`; its TTL fact now expires into
  // nothing.
  EXPECT_TRUE(session.AdvanceTime(10.0).ok());
  ASSERT_TRUE(session.Apply().ok());
}

// Checkpoint → RemoveProgram interplay: a snapshot taken before a removal
// still restores the removed view (snapshots are full images, not logs).
TEST(PersistTest, CheckpointThenRemoveRestoresBothViews) {
  const Strategy strategy{"AbsorptionLazy", ProvMode::kAbsorption,
                          ShipMode::kLazy};
  const std::string path = TempPath("remove.ckpt");
  Session session(SharedOptions(1));
  ASSERT_TRUE(session.AddProgram(kReachable, GraphOptions(strategy)).ok());
  auto span = session.AddProgram(kSpan, GraphOptions(strategy));
  ASSERT_TRUE(span.ok());
  ASSERT_TRUE(session.Insert("edge", {0, 1}).ok());
  ASSERT_TRUE(session.Apply().ok());
  ASSERT_TRUE(session.Checkpoint(path).ok());
  ASSERT_TRUE(session.RemoveProgram(*span).ok());
  EXPECT_EQ(session.num_views(), 1u);

  Session restored(SharedOptions(1));
  ASSERT_TRUE(restored.Restore(path).ok());
  EXPECT_EQ(restored.num_views(), 2u);
  auto rows = restored.view(1)->Scan("span");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

// --- Per-view budget arbitration ---------------------------------------------

// Two tenants in one drain: the small-budget view is cut off at ITS budget
// while the co-resident view (and the drain as a whole) runs to fixpoint.
TEST(PersistTest, BudgetArbitrationIsPerView) {
  const Strategy strategy{"AbsorptionLazy", ProvMode::kAbsorption,
                          ShipMode::kLazy};
  Session session(SharedOptions(1));
  auto big = session.AddProgram(kReachable, GraphOptions(strategy));
  ASSERT_TRUE(big.ok());
  EngineOptions capped = GraphOptions(strategy);
  capped.runtime.message_budget = 5;
  auto small = session.AddProgram(kSpan, capped);
  ASSERT_TRUE(small.ok());

  for (int i = 0; i < kNodes; ++i) {
    ASSERT_TRUE(session.Insert("edge", {double(i), double(i + 1)}).ok());
  }
  // Initiated by the big-budget view: ITS run converges even though the
  // co-resident tenant exhausts its own allowance mid-drain.
  Status st = (*big)->Apply();
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE((*big)->converged());
  EXPECT_FALSE((*small)->converged());
  EXPECT_GE((*small)->Metrics().dropped_messages +
                (*small)->Metrics().aborted_runs,
            1u);
  // The budgeted view's delivered count respects its cap's order of
  // magnitude (the abort lands at a batch boundary, never wildly past it).
  EXPECT_LE((*small)->Metrics().messages, 64u);

  // The surviving view's answer is complete (the closure of the inserted
  // path 0 -> 1 -> ... -> kNodes).
  auto rows = (*big)->Scan("reachable");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), static_cast<size_t>(kNodes) * (kNodes + 1) / 2);
}

// An uncapped co-tenant must not change the historic single-view abort
// semantics: the initiating view still stops at its own budget.
TEST(PersistTest, InitiatorBudgetStillAborts) {
  const Strategy strategy{"AbsorptionLazy", ProvMode::kAbsorption,
                          ShipMode::kLazy};
  Session session(SharedOptions(1));
  EngineOptions capped = GraphOptions(strategy);
  capped.runtime.message_budget = 5;
  auto small = session.AddProgram(kReachable, capped);
  ASSERT_TRUE(small.ok());
  auto big = session.AddProgram(kSpan, GraphOptions(strategy));
  ASSERT_TRUE(big.ok());

  for (int i = 0; i < kNodes; ++i) {
    ASSERT_TRUE(session.Insert("edge", {double(i), double(i + 1)}).ok());
  }
  Status st = (*small)->Apply();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE((*small)->converged());
  EXPECT_TRUE((*big)->converged());
  auto rows = (*big)->Scan("span");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), static_cast<size_t>(kNodes) * (kNodes + 1) / 2);
}

// Budget-aborted tenants round-trip too: checkpoint after an abort, restore,
// and the non-converged flag plus abort metrics survive.
TEST(PersistTest, AbortedViewSurvivesRoundTrip) {
  const Strategy strategy{"AbsorptionLazy", ProvMode::kAbsorption,
                          ShipMode::kLazy};
  const std::string path = TempPath("aborted.ckpt");
  uint64_t aborted_messages = 0;
  {
    Session session(SharedOptions(1));
    EngineOptions capped = GraphOptions(strategy);
    capped.runtime.message_budget = 5;
    auto small = session.AddProgram(kReachable, capped);
    ASSERT_TRUE(small.ok());
    for (int i = 0; i < kNodes; ++i) {
      ASSERT_TRUE(session.Insert("edge", {double(i), double(i + 1)}).ok());
    }
    ASSERT_EQ(session.Apply().code(), StatusCode::kResourceExhausted);
    aborted_messages = (*small)->Metrics().messages;
    ASSERT_TRUE(session.Checkpoint(path).ok());
  }
  Session restored(SharedOptions(1));
  ASSERT_TRUE(restored.Restore(path).ok());
  EXPECT_FALSE(restored.view(0)->converged());
  EXPECT_EQ(restored.view(0)->Metrics().messages, aborted_messages);
}

// ---------------------------------------------------------------------------
// Complement-edge codec coverage: the v3 wire format carries tagged refs.
// ---------------------------------------------------------------------------

// A provenance-shaped function family with plenty of complemented edges:
// Or-of-products, their negations, and Diffs between them.
std::vector<bdd::BddRef> ComplementRichRoots(bdd::Manager& mgr) {
  Rng rng(0xced9e);
  std::vector<bdd::BddRef> roots;
  std::vector<bdd::BddRef> base;
  for (int t = 0; t < 12; ++t) {
    bdd::Var lo = static_cast<bdd::Var>(rng.NextBounded(10));
    bdd::BddRef p = bdd::kTrue;
    for (bdd::Var j = 0; j < 3; ++j) p = mgr.And(p, mgr.MakeVar(lo + j));
    base.push_back(p);
  }
  bdd::BddRef f = bdd::kFalse;
  for (bdd::BddRef p : base) {
    f = mgr.Or(f, p);
    roots.push_back(f);
    roots.push_back(mgr.Not(f));
  }
  roots.push_back(mgr.Diff(roots[4], roots[9]));
  roots.push_back(mgr.Diff(mgr.Not(roots[4]), mgr.Not(roots[9])));
  roots.push_back(bdd::kTrue);
  roots.push_back(bdd::kFalse);
  return roots;
}

// The encoded node table and root ids are manager-independent: the same
// functions built under 1, 2, and 4 worker slots (different interning
// orders are possible concurrently; here the build is serial but the slot
// configuration differs) serialize to bit-identical bytes, and complement
// bits survive the round trip — a root and its negation differ by exactly
// the low id bit on the wire and come back as exact tagged-ref negations.
TEST(PersistCodecTest, ComplementEdgeBddsEncodeIdenticallyAcrossSlots) {
  std::vector<std::vector<uint8_t>> encodings;
  std::vector<std::vector<uint32_t>> ids;
  for (size_t slots : {1, 2, 4}) {
    bdd::Manager mgr;
    mgr.EnsureWorkerSlots(slots);
    std::vector<bdd::BddRef> roots = ComplementRichRoots(mgr);
    persist::BddEncoder enc(&mgr);
    persist::Writer w;
    std::vector<uint32_t> root_ids;
    for (bdd::BddRef r : roots) root_ids.push_back(enc.Encode(r));
    enc.WriteNodeTable(&w);
    encodings.push_back(w.bytes());
    ids.push_back(std::move(root_ids));
  }
  EXPECT_EQ(encodings[0], encodings[1]);
  EXPECT_EQ(encodings[0], encodings[2]);
  EXPECT_EQ(ids[0], ids[1]);
  EXPECT_EQ(ids[0], ids[2]);

  // Decode into a fresh manager: refs are semantically identical and the
  // negation pairing is preserved ref-for-ref.
  bdd::Manager fresh;
  persist::Reader r(encodings[0]);
  persist::BddDecoder dec(&fresh);
  ASSERT_TRUE(dec.ReadNodeTable(&r).ok());
  // The first 24 roots are (f, ¬f) pairs by construction; the trailing
  // Diff/terminal roots are not paired.
  for (size_t i = 0; i + 1 < 24; i += 2) {
    bdd::BddRef a = dec.Resolve(ids[0][i], &r);
    bdd::BddRef b = dec.Resolve(ids[0][i + 1], &r);
    EXPECT_EQ(ids[0][i] ^ ids[0][i + 1], 1u) << "root pair " << i;
    EXPECT_EQ(b, fresh.Not(a)) << "root pair " << i;
  }
  ASSERT_TRUE(r.Check("resolve").ok());
}

// Decoder-level fuzz: random bit flips in the encoded node table (below the
// container checksum, so nothing screens them out) must either decode — a
// flip can land in a don't-care — or fail typed through Reader's error
// flag; resolving a root against a corrupt table must never crash.
TEST(PersistCodecTest, NodeTableBitFlipFuzzIsTyped) {
  bdd::Manager mgr;
  std::vector<bdd::BddRef> roots = ComplementRichRoots(mgr);
  persist::BddEncoder enc(&mgr);
  std::vector<uint32_t> ids;
  for (bdd::BddRef r : roots) ids.push_back(enc.Encode(r));
  persist::Writer w;
  enc.WriteNodeTable(&w);
  const std::vector<uint8_t>& bytes = w.bytes();

  Rng rng(0xb1f);
  for (int trial = 0; trial < 256; ++trial) {
    std::vector<uint8_t> flipped = bytes;
    size_t at = static_cast<size_t>(rng.NextBounded(flipped.size()));
    flipped[at] ^= static_cast<uint8_t>(1u << rng.NextBounded(8));
    bdd::Manager fresh;
    persist::Reader r(flipped);
    persist::BddDecoder dec(&fresh);
    Status st = dec.ReadNodeTable(&r);
    if (!st.ok()) {
      EXPECT_EQ(st.code(), StatusCode::kDataLoss) << "byte " << at;
      continue;
    }
    for (uint32_t id : ids) {
      (void)dec.Resolve(id, &r);  // Must not crash; may flag the reader.
    }
    Status resolved = r.Check("resolve");
    if (!resolved.ok()) {
      EXPECT_EQ(resolved.code(), StatusCode::kDataLoss) << "byte " << at;
    }
  }
}

}  // namespace
}  // namespace recnet
