#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "topology/sensor_grid.h"
#include "topology/transit_stub.h"
#include "topology/workload.h"

namespace recnet {
namespace {

TEST(TransitStubTest, DefaultMatchesPaperScale) {
  // Paper §7.1: 4 transit nodes, 3 stubs per transit, 8 nodes per stub ->
  // 100 nodes and roughly 200 bidirectional links.
  Topology topo = MakeTransitStub(TransitStubOptions{});
  EXPECT_EQ(topo.num_nodes, 100);
  EXPECT_GE(topo.links.size(), 150u);
  EXPECT_LE(topo.links.size(), 250u);
  EXPECT_EQ(topo.num_link_tuples(), 2 * topo.links.size());
  EXPECT_TRUE(IsConnected(topo));
}

TEST(TransitStubTest, LatenciesFollowPaperClasses) {
  Topology topo = MakeTransitStub(TransitStubOptions{});
  std::set<double> latencies;
  for (const TopoLink& link : topo.links) latencies.insert(link.cost_ms);
  EXPECT_EQ(latencies, (std::set<double>{2.0, 10.0, 50.0}));
}

TEST(TransitStubTest, SparseHalvesLinks) {
  TransitStubOptions dense;
  dense.dense = true;
  TransitStubOptions sparse;
  sparse.dense = false;
  Topology d = MakeTransitStub(dense);
  Topology s = MakeTransitStub(sparse);
  EXPECT_EQ(d.num_nodes, s.num_nodes);
  EXPECT_LT(s.links.size(), d.links.size());
  // "Half the number of links for a given network size", approximately.
  EXPECT_NEAR(static_cast<double>(s.links.size()),
              static_cast<double>(d.links.size()) / 2.0,
              static_cast<double>(d.links.size()) / 4.0);
  EXPECT_TRUE(IsConnected(s));
}

TEST(TransitStubTest, Deterministic) {
  TransitStubOptions options;
  options.seed = 7;
  Topology a = MakeTransitStub(options);
  Topology b = MakeTransitStub(options);
  ASSERT_EQ(a.links.size(), b.links.size());
  for (size_t i = 0; i < a.links.size(); ++i) {
    EXPECT_EQ(a.links[i].a, b.links[i].a);
    EXPECT_EQ(a.links[i].b, b.links[i].b);
  }
}

TEST(TransitStubTest, TargetLinkSweepScales) {
  size_t prev = 0;
  for (int target : {100, 200, 400, 800}) {
    Topology topo = MakeTransitStubWithTargetLinks(target, /*dense=*/true, 1);
    EXPECT_TRUE(IsConnected(topo));
    // Within 40% of the requested link count.
    EXPECT_NEAR(static_cast<double>(topo.links.size()), target, target * 0.4);
    EXPECT_GT(topo.links.size(), prev);
    prev = topo.links.size();
  }
}

TEST(SensorGridTest, DefaultsMatchPaper) {
  // Paper §7.1: 100m x 100m grid, k = 20, 5 seed groups.
  SensorField field = MakeSensorGrid(SensorGridOptions{});
  EXPECT_EQ(field.num_sensors, 100);
  EXPECT_EQ(field.seed_sensors.size(), 5u);
  // Seeds are distinct.
  std::set<int> distinct(field.seed_sensors.begin(),
                         field.seed_sensors.end());
  EXPECT_EQ(distinct.size(), 5u);
}

TEST(SensorGridTest, NeighborsRespectThreshold) {
  SensorField field = MakeSensorGrid(SensorGridOptions{});
  for (int a = 0; a < field.num_sensors; ++a) {
    for (int b : field.neighbors[static_cast<size_t>(a)]) {
      double dx = field.positions[a].first - field.positions[b].first;
      double dy = field.positions[a].second - field.positions[b].second;
      EXPECT_LT(std::sqrt(dx * dx + dy * dy), field.k);
      EXPECT_NE(a, b);
    }
  }
  // Grid spacing 10 and k=20: an interior sensor sees its 8-neighborhood
  // plus the 4 lattice points at distance 2 in each axis... count > 4.
  EXPECT_GT(field.neighbors[55].size(), 4u);
}

TEST(SensorGridTest, NeighborRelationIsSymmetric) {
  SensorField field = MakeSensorGrid(SensorGridOptions{});
  for (int a = 0; a < field.num_sensors; ++a) {
    for (int b : field.neighbors[static_cast<size_t>(a)]) {
      const auto& back = field.neighbors[static_cast<size_t>(b)];
      EXPECT_NE(std::find(back.begin(), back.end(), a), back.end());
    }
  }
}

TEST(WorkloadTest, DirectedLinksDoublesUndirected) {
  Topology topo = MakeTransitStub(TransitStubOptions{});
  std::vector<LinkTuple> links = DirectedLinks(topo);
  EXPECT_EQ(links.size(), topo.num_link_tuples());
}

TEST(WorkloadTest, InsertionPrefixScalesWithRatio) {
  Topology topo = MakeTransitStub(TransitStubOptions{});
  auto half = InsertionPrefix(topo, 0.5, 1);
  auto full = InsertionPrefix(topo, 1.0, 1);
  EXPECT_EQ(full.size(), topo.num_link_tuples());
  EXPECT_NEAR(static_cast<double>(half.size()),
              static_cast<double>(full.size()) / 2.0, 1.0);
}

TEST(WorkloadTest, ShufflesAreSeedDeterministic) {
  Topology topo = MakeTransitStub(TransitStubOptions{});
  auto a = InsertionPrefix(topo, 1.0, 5);
  auto b = InsertionPrefix(topo, 1.0, 5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
  }
}

}  // namespace
}  // namespace recnet
