#include "net/router.h"

#include <gtest/gtest.h>

#include "engine/metrics.h"
#include "engine/runtime_base.h"

namespace recnet {
namespace {

Update Ins(Tuple t) {
  bdd::Manager mgr;
  return Update::Insert(std::move(t), Prov::True(ProvMode::kSet, &mgr));
}

TEST(RouterTest, FifoDeliveryOrder) {
  Router router(4, 4);
  std::vector<int64_t> seen;
  router.set_handler([&](const Envelope& env) {
    seen.push_back(env.update.tuple.IntAt(0));
  });
  for (int64_t i = 0; i < 5; ++i) {
    router.Send(0, 1, kPortFix, Ins(Tuple::OfInts({i})));
  }
  EXPECT_TRUE(router.RunUntilQuiescent(100));
  EXPECT_EQ(seen, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(RouterTest, HandlerMaySendMore) {
  Router router(4, 4);
  int delivered = 0;
  router.set_handler([&](const Envelope& env) {
    ++delivered;
    if (env.update.tuple.IntAt(0) < 3) {
      router.Send(env.dst, (env.dst + 1) % 4, kPortFix,
                  Ins(Tuple::OfInts({env.update.tuple.IntAt(0) + 1})));
    }
  });
  router.Send(0, 1, kPortFix, Ins(Tuple::OfInts({0})));
  EXPECT_TRUE(router.RunUntilQuiescent(100));
  EXPECT_EQ(delivered, 4);
}

TEST(RouterTest, BudgetExhaustionReturnsFalse) {
  Router router(2, 2);
  router.set_handler([&](const Envelope& env) {
    // Ping-pong forever.
    router.Send(env.dst, env.src, kPortFix, Ins(Tuple::OfInts({1})));
  });
  router.Send(0, 1, kPortFix, Ins(Tuple::OfInts({1})));
  EXPECT_FALSE(router.RunUntilQuiescent(50));
  EXPECT_GE(router.delivered(), 50u);
}

TEST(RouterTest, LocalMessagesAreFreeOnTheWire) {
  // 4 logical nodes on 2 physical peers: 0,2 -> peer 0; 1,3 -> peer 1.
  Router router(4, 2);
  router.set_handler([](const Envelope&) {});
  router.Send(0, 2, kPortFix, Ins(Tuple::OfInts({1, 2})));  // Same peer.
  EXPECT_EQ(router.stats().messages, 0u);
  EXPECT_EQ(router.stats().local_messages, 1u);
  router.Send(0, 1, kPortFix, Ins(Tuple::OfInts({1, 2})));  // Cross peer.
  EXPECT_EQ(router.stats().messages, 1u);
  EXPECT_GT(router.stats().bytes, 0u);
  EXPECT_TRUE(router.RunUntilQuiescent(10));
}

TEST(RouterTest, StatsClassifyMessageTypes) {
  Router router(2, 2);
  router.set_handler([](const Envelope&) {});
  bdd::Manager mgr;
  router.Send(0, 1, kPortFix,
              Update::Insert(Tuple::OfInts({1}),
                             Prov::BaseVar(ProvMode::kAbsorption, &mgr, 3)));
  router.Send(0, 1, kPortFix, Update::Delete(Tuple::OfInts({1})));
  router.Send(0, 1, kPortKill, Update::Kill({3}));
  const NetworkStats& s = router.stats();
  EXPECT_EQ(s.insert_messages, 1u);
  EXPECT_EQ(s.delete_messages, 1u);
  EXPECT_EQ(s.kill_messages, 1u);
  EXPECT_EQ(s.prov_samples, 1u);
  EXPECT_GT(s.AvgProvBytesPerTuple(), 0.0);
  EXPECT_TRUE(router.RunUntilQuiescent(10));
}

TEST(RouterTest, PerPeerBytesAttributedToSender) {
  Router router(4, 2);
  router.set_handler([](const Envelope&) {});
  router.Send(1, 2, kPortFix, Ins(Tuple::OfInts({1})));  // Peer 1 -> 0.
  EXPECT_EQ(router.stats().per_peer_bytes[0], 0u);
  EXPECT_GT(router.stats().per_peer_bytes[1], 0u);
  EXPECT_TRUE(router.RunUntilQuiescent(10));
}

TEST(RouterTest, ResetClearsCounters) {
  Router router(2, 2);
  router.set_handler([](const Envelope&) {});
  router.Send(0, 1, kPortFix, Ins(Tuple::OfInts({1})));
  EXPECT_TRUE(router.RunUntilQuiescent(10));
  router.stats().Reset();
  EXPECT_EQ(router.stats().messages, 0u);
  EXPECT_EQ(router.stats().bytes, 0u);
}

TEST(MetricsTest, SimSecondsScalesWithPeers) {
  double few = EstimateSimSeconds(10.0, 1000, 2, 0.001);
  double many = EstimateSimSeconds(10.0, 1000, 10, 0.001);
  EXPECT_GT(few, many);
}

TEST(MetricsTest, ToStringMentionsBudget) {
  RunMetrics m;
  m.converged = false;
  EXPECT_NE(m.ToString().find("budget"), std::string::npos);
}

}  // namespace
}  // namespace recnet
