#include "net/router.h"

#include <gtest/gtest.h>

#include <tuple>
#include <utility>
#include <vector>

#include "engine/metrics.h"
#include "engine/reachable_runtime.h"
#include "engine/runtime_base.h"

namespace recnet {
namespace {

Update Ins(Tuple t) {
  bdd::Manager mgr;
  return Update::Insert(std::move(t), Prov::True(ProvMode::kSet, &mgr));
}

TEST(RouterTest, FifoDeliveryOrder) {
  Router router(4, 4);
  std::vector<int64_t> seen;
  router.set_handler([&](const Envelope& env) {
    seen.push_back(env.update.tuple.IntAt(0));
  });
  for (int64_t i = 0; i < 5; ++i) {
    router.Send(0, 1, kPortFix, Ins(Tuple::OfInts({i})));
  }
  EXPECT_TRUE(router.RunUntilQuiescent(100));
  EXPECT_EQ(seen, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(RouterTest, HandlerMaySendMore) {
  Router router(4, 4);
  int delivered = 0;
  router.set_handler([&](const Envelope& env) {
    ++delivered;
    if (env.update.tuple.IntAt(0) < 3) {
      router.Send(env.dst, (env.dst + 1) % 4, kPortFix,
                  Ins(Tuple::OfInts({env.update.tuple.IntAt(0) + 1})));
    }
  });
  router.Send(0, 1, kPortFix, Ins(Tuple::OfInts({0})));
  EXPECT_TRUE(router.RunUntilQuiescent(100));
  EXPECT_EQ(delivered, 4);
}

TEST(RouterTest, BudgetExhaustionReturnsFalse) {
  Router router(2, 2);
  router.set_handler([&](const Envelope& env) {
    // Ping-pong forever.
    router.Send(env.dst, env.src, kPortFix, Ins(Tuple::OfInts({1})));
  });
  router.Send(0, 1, kPortFix, Ins(Tuple::OfInts({1})));
  EXPECT_FALSE(router.RunUntilQuiescent(50));
  EXPECT_GE(router.delivered(), 50u);
}

TEST(RouterTest, BudgetExhaustionDropsQueueAndRecordsAbort) {
  Router router(2, 2);
  router.set_handler([&](const Envelope& env) {
    router.Send(env.dst, env.src, kPortFix, Ins(Tuple::OfInts({1})));
  });
  router.Send(0, 1, kPortFix, Ins(Tuple::OfInts({1})));
  EXPECT_FALSE(router.RunUntilQuiescent(50));
  // The aborted run is explicit: no stale queue survives that a later run
  // could silently resume from, and the abort is visible in the stats.
  EXPECT_EQ(router.pending(), 0u);
  EXPECT_EQ(router.stats().aborted_runs, 1u);
  EXPECT_GE(router.stats().dropped_messages, 1u);
}

TEST(RouterTest, AbortUnchargesTheDroppedQueue) {
  // Metrics of an aborted run reflect the traffic delivered up to the
  // cutoff: wire charges for messages dropped with the queue are reversed.
  Router router(2, 2);
  router.set_handler([](const Envelope&) {});
  for (int64_t i = 0; i < 5; ++i) {
    router.Send(0, 1, kPortFix, Ins(Tuple::OfInts({i})));
  }
  EXPECT_EQ(router.stats().messages, 5u);
  uint64_t bytes_for_five = router.stats().bytes;
  EXPECT_FALSE(router.RunUntilQuiescent(2));
  EXPECT_EQ(router.stats().messages, 2u);
  EXPECT_EQ(router.stats().insert_messages, 2u);
  EXPECT_EQ(router.stats().bytes, bytes_for_five / 5 * 2);
  EXPECT_EQ(router.stats().dropped_messages, 3u);
  EXPECT_EQ(router.stats().aborted_runs, 1u);
}

TEST(RouterTest, BatchRunsNeverMixPortsAndPreserveOrder) {
  // Same destination, alternating ports: runs must split at every port
  // change (handlers hoist per-port operator dispatch, so a mixed run would
  // be delivered to the wrong operator input).
  Router router(4, 4);
  std::vector<std::pair<int, int64_t>> order;  // (port, payload)
  std::vector<size_t> batch_sizes;
  router.set_batch_handler([&](const Envelope* envs, size_t n) {
    batch_sizes.push_back(n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(envs[i].dst, envs[0].dst);
      EXPECT_EQ(envs[i].port, envs[0].port);
      order.emplace_back(envs[i].port, envs[i].update.tuple.IntAt(0));
    }
  });
  router.Send(0, 1, kPortFix, Ins(Tuple::OfInts({0})));
  router.Send(0, 1, kPortFix, Ins(Tuple::OfInts({1})));
  router.Send(0, 1, kPortJoinBuild, Ins(Tuple::OfInts({2})));
  router.Send(0, 1, kPortFix, Ins(Tuple::OfInts({3})));
  router.Send(0, 2, kPortFix, Ins(Tuple::OfInts({4})));
  EXPECT_TRUE(router.RunUntilQuiescent(100));
  EXPECT_EQ(order, (std::vector<std::pair<int, int64_t>>{{kPortFix, 0},
                                                         {kPortFix, 1},
                                                         {kPortJoinBuild, 2},
                                                         {kPortFix, 3},
                                                         {kPortFix, 4}}));
  EXPECT_EQ(batch_sizes, (std::vector<size_t>{2, 1, 1, 1}));
}

TEST(RouterTest, PortBatchingParityWithUnbatchedDelivery) {
  // (dst, port)-batched delivery must be envelope-for-envelope identical to
  // unbatched delivery — same order, same counters except `batches`.
  std::vector<std::tuple<LogicalNode, int, int64_t>> reference;
  NetworkStats reference_stats;
  for (int batched = 0; batched < 2; ++batched) {
    SCOPED_TRACE(batched);
    Router a(6, 3);
    a.set_batching(batched == 1);
    std::vector<std::tuple<LogicalNode, int, int64_t>> seen;
    a.set_batch_handler([&](const Envelope* envs, size_t n) {
      for (size_t i = 0; i < n; ++i) {
        seen.emplace_back(envs[i].dst, envs[i].port,
                          envs[i].update.tuple.IntAt(0));
        // Handlers re-sending mid-run exercises the inbox swap.
        if (envs[i].update.tuple.IntAt(0) == 2) {
          a.Send(envs[i].dst, (envs[i].dst + 1) % 6, kPortKill,
                 Ins(Tuple::OfInts({100})));
        }
      }
    });
    for (int64_t i = 0; i < 12; ++i) {
      a.Send(0, static_cast<LogicalNode>(i % 3 + 1), i % 2 == 0 ? kPortFix
                                                                : kPortAgg,
             Ins(Tuple::OfInts({i})));
    }
    EXPECT_TRUE(a.RunUntilQuiescent(100));
    if (batched == 0) {
      reference = seen;
      reference_stats = a.stats();
    } else {
      EXPECT_EQ(seen, reference);
      EXPECT_EQ(a.stats().messages, reference_stats.messages);
      EXPECT_EQ(a.stats().bytes, reference_stats.bytes);
      EXPECT_EQ(a.stats().local_messages, reference_stats.local_messages);
      EXPECT_EQ(a.stats().insert_messages, reference_stats.insert_messages);
      EXPECT_LE(a.stats().batches, reference_stats.batches);
    }
  }
}

TEST(RouterTest, BatchDeliveryCoalescesSameDestinationRuns) {
  Router router(4, 4);
  std::vector<size_t> batch_sizes;
  std::vector<int64_t> order;
  router.set_batch_handler([&](const Envelope* envs, size_t n) {
    batch_sizes.push_back(n);
    for (size_t i = 0; i < n; ++i) order.push_back(envs[i].update.tuple.IntAt(0));
  });
  // Three to node 1, then two to node 2, then one more to node 1.
  for (int64_t i = 0; i < 3; ++i) {
    router.Send(0, 1, kPortFix, Ins(Tuple::OfInts({i})));
  }
  for (int64_t i = 3; i < 5; ++i) {
    router.Send(0, 2, kPortFix, Ins(Tuple::OfInts({i})));
  }
  router.Send(0, 1, kPortFix, Ins(Tuple::OfInts({5})));
  EXPECT_TRUE(router.RunUntilQuiescent(100));
  // FIFO order is preserved exactly; only the dispatch is coalesced.
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(batch_sizes, (std::vector<size_t>{3, 2, 1}));
  EXPECT_EQ(router.stats().batches, 3u);
}

TEST(RouterTest, SendBatchChargedLikeIndividualSends) {
  Router a(4, 2);
  Router b(4, 2);
  a.set_handler([](const Envelope&) {});
  b.set_handler([](const Envelope&) {});
  std::vector<Update> batch;
  for (int64_t i = 0; i < 4; ++i) {
    a.Send(0, 1, kPortFix, Ins(Tuple::OfInts({i})));
    batch.push_back(Ins(Tuple::OfInts({i})));
  }
  b.SendBatch(0, 1, kPortFix, std::move(batch));
  EXPECT_EQ(a.stats().messages, b.stats().messages);
  EXPECT_EQ(a.stats().bytes, b.stats().bytes);
  EXPECT_EQ(a.stats().insert_messages, b.stats().insert_messages);
  EXPECT_EQ(a.pending(), b.pending());
  EXPECT_TRUE(a.RunUntilQuiescent(10));
  EXPECT_TRUE(b.RunUntilQuiescent(10));
  EXPECT_EQ(a.delivered(), b.delivered());
}

TEST(RouterTest, LocalMessagesAreFreeOnTheWire) {
  // 4 logical nodes on 2 physical peers: 0,2 -> peer 0; 1,3 -> peer 1.
  Router router(4, 2);
  router.set_handler([](const Envelope&) {});
  router.Send(0, 2, kPortFix, Ins(Tuple::OfInts({1, 2})));  // Same peer.
  EXPECT_EQ(router.stats().messages, 0u);
  EXPECT_EQ(router.stats().local_messages, 1u);
  router.Send(0, 1, kPortFix, Ins(Tuple::OfInts({1, 2})));  // Cross peer.
  EXPECT_EQ(router.stats().messages, 1u);
  EXPECT_GT(router.stats().bytes, 0u);
  EXPECT_TRUE(router.RunUntilQuiescent(10));
}

TEST(RouterTest, StatsClassifyMessageTypes) {
  // The manager must outlive the router: delivered envelopes (and the BDD
  // handles inside their annotations) are retained in the router's FIFO
  // storage until the next refill or destruction. The engine guarantees
  // this ordering via Substrate; standalone senders must too.
  bdd::Manager mgr;
  Router router(2, 2);
  router.set_handler([](const Envelope&) {});
  router.Send(0, 1, kPortFix,
              Update::Insert(Tuple::OfInts({1}),
                             Prov::BaseVar(ProvMode::kAbsorption, &mgr, 3)));
  router.Send(0, 1, kPortFix, Update::Delete(Tuple::OfInts({1})));
  router.Send(0, 1, kPortKill, Update::Kill({3}));
  const NetworkStats& s = router.stats();
  EXPECT_EQ(s.insert_messages, 1u);
  EXPECT_EQ(s.delete_messages, 1u);
  EXPECT_EQ(s.kill_messages, 1u);
  EXPECT_EQ(s.prov_samples, 1u);
  EXPECT_GT(s.AvgProvBytesPerTuple(), 0.0);
  EXPECT_TRUE(router.RunUntilQuiescent(10));
}

TEST(RouterTest, PerPeerBytesAttributedToSender) {
  Router router(4, 2);
  router.set_handler([](const Envelope&) {});
  router.Send(1, 2, kPortFix, Ins(Tuple::OfInts({1})));  // Peer 1 -> 0.
  EXPECT_EQ(router.stats().per_peer_bytes[0], 0u);
  EXPECT_GT(router.stats().per_peer_bytes[1], 0u);
  EXPECT_TRUE(router.RunUntilQuiescent(10));
}

TEST(RouterTest, ResetClearsCounters) {
  Router router(2, 2);
  router.set_handler([](const Envelope&) {});
  router.Send(0, 1, kPortFix, Ins(Tuple::OfInts({1})));
  EXPECT_TRUE(router.RunUntilQuiescent(10));
  router.ResetStats();
  EXPECT_EQ(router.stats().messages, 0u);
  EXPECT_EQ(router.stats().bytes, 0u);
}

// Batched delivery is a dispatch optimization only: for the same workload
// the traffic counters must be bit-identical to unbatched execution (the
// figure-7 reproducibility contract), across all maintenance strategies.
TEST(RouterTest, BatchedRunMatchesUnbatchedNetworkStats) {
  for (ProvMode prov :
       {ProvMode::kAbsorption, ProvMode::kRelative, ProvMode::kSet}) {
    NetworkStats stats[2];
    size_t view_size[2];
    for (int batched = 0; batched < 2; ++batched) {
      RuntimeOptions opts;
      opts.prov = prov;
      opts.num_physical = 3;
      opts.batch_delivery = batched == 1;
      ReachableRuntime rt(8, opts);
      for (int i = 0; i < 8; ++i) {
        rt.InsertLink(i, (i + 1) % 8);
        rt.InsertLink(i, (i + 3) % 8);
      }
      ASSERT_TRUE(rt.Run());
      rt.DeleteLink(2, 3);
      rt.DeleteLink(5, 6);
      ASSERT_TRUE(rt.Run());
      stats[batched] = rt.router().stats();
      view_size[batched] = rt.ViewSize();
      // Full view-content parity, not just sizes: batched delivery must
      // leave every partition identical.
      if (batched == 1) {
        RuntimeOptions unbatched_opts = opts;
        unbatched_opts.batch_delivery = false;
        ReachableRuntime ref(8, unbatched_opts);
        for (int i = 0; i < 8; ++i) {
          ref.InsertLink(i, (i + 1) % 8);
          ref.InsertLink(i, (i + 3) % 8);
        }
        ASSERT_TRUE(ref.Run());
        ref.DeleteLink(2, 3);
        ref.DeleteLink(5, 6);
        ASSERT_TRUE(ref.Run());
        for (int src = 0; src < 8; ++src) {
          EXPECT_EQ(rt.ReachableFrom(src), ref.ReachableFrom(src))
              << ProvModeName(prov) << " src " << src;
        }
      }
    }
    EXPECT_EQ(view_size[0], view_size[1]);
    EXPECT_EQ(stats[0].messages, stats[1].messages);
    EXPECT_EQ(stats[0].bytes, stats[1].bytes);
    EXPECT_EQ(stats[0].local_messages, stats[1].local_messages);
    EXPECT_EQ(stats[0].insert_messages, stats[1].insert_messages);
    EXPECT_EQ(stats[0].delete_messages, stats[1].delete_messages);
    EXPECT_EQ(stats[0].kill_messages, stats[1].kill_messages);
    EXPECT_EQ(stats[0].prov_bytes, stats[1].prov_bytes);
    EXPECT_EQ(stats[0].prov_samples, stats[1].prov_samples);
    EXPECT_EQ(stats[0].per_peer_bytes, stats[1].per_peer_bytes);
    // Coalescing is the only permitted difference.
    EXPECT_LE(stats[1].batches, stats[0].batches);
  }
}

TEST(MetricsTest, SimSecondsScalesWithPeers) {
  double few = EstimateSimSeconds(10.0, 1000, 2, 0.001);
  double many = EstimateSimSeconds(10.0, 1000, 10, 0.001);
  EXPECT_GT(few, many);
}

TEST(MetricsTest, ToStringMentionsBudget) {
  RunMetrics m;
  m.converged = false;
  EXPECT_NE(m.ToString().find("budget"), std::string::npos);
}

}  // namespace
}  // namespace recnet
