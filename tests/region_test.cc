#include "engine/region_runtime.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "queries/reference.h"

namespace recnet {
namespace {

RuntimeOptions Opts(ProvMode prov, ShipMode ship = ShipMode::kLazy) {
  RuntimeOptions opts;
  opts.prov = prov;
  opts.ship = ship;
  opts.num_physical = 1000;
  opts.message_budget = 10'000'000;
  return opts;
}

// A 3x3 field with spacing 10 and k = 12: only the 4-neighborhood is
// contiguous. Seed of region 0 at the center (sensor 4).
SensorField SmallField() {
  SensorGridOptions options;
  options.grid_dim = 3;
  options.spacing_m = 10.0;
  options.k = 12.0;
  options.num_seeds = 1;
  SensorField field = MakeSensorGrid(options);
  field.seed_sensors = {4};
  return field;
}

void ExpectMatchesReference(const RegionRuntime& rt, const SensorField& field,
                            const std::vector<bool>& triggered) {
  auto expected = ReferenceRegions(field, triggered);
  for (size_t r = 0; r < expected.size(); ++r) {
    EXPECT_EQ(rt.RegionMembers(static_cast<int>(r)), expected[r])
        << "region " << r;
  }
}

class RegionModesTest : public ::testing::TestWithParam<ProvMode> {};

TEST_P(RegionModesTest, SeedAloneFormsSingletonRegion) {
  SensorField field = SmallField();
  RegionRuntime rt(field, Opts(GetParam()));
  rt.Trigger(4);
  ASSERT_TRUE(rt.Run());
  EXPECT_EQ(rt.RegionMembers(0), (std::set<int>{1, 3, 4, 5, 7}));
  // Only the (triggered) seed expands; neighbors join but are themselves
  // untriggered, so the region stops at the 4-neighborhood.
  EXPECT_EQ(rt.RegionSize(0), 5);
  EXPECT_EQ(rt.LargestRegionSize(), 5);
}

TEST_P(RegionModesTest, TriggeredChainGrowsRegion) {
  SensorField field = SmallField();
  RegionRuntime rt(field, Opts(GetParam()));
  rt.Trigger(4);
  rt.Trigger(5);  // Right of center; its neighbors (2, 8) join too.
  ASSERT_TRUE(rt.Run());
  std::vector<bool> triggered(9, false);
  triggered[4] = triggered[5] = true;
  ExpectMatchesReference(rt, field, triggered);
  EXPECT_TRUE(rt.InRegion(0, 2));
  EXPECT_TRUE(rt.InRegion(0, 8));
}

TEST_P(RegionModesTest, UntriggerShrinksRegion) {
  SensorField field = SmallField();
  RegionRuntime rt(field, Opts(GetParam()));
  rt.Trigger(4);
  rt.Trigger(5);
  ASSERT_TRUE(rt.Run());
  rt.Untrigger(5);
  ASSERT_TRUE(rt.Run());
  std::vector<bool> triggered(9, false);
  triggered[4] = true;
  ExpectMatchesReference(rt, field, triggered);
  EXPECT_FALSE(rt.InRegion(0, 2));
  EXPECT_EQ(rt.RegionSize(0), 5);
}

TEST_P(RegionModesTest, UntriggerSeedEmptiesRegion) {
  SensorField field = SmallField();
  RegionRuntime rt(field, Opts(GetParam()));
  rt.Trigger(4);
  rt.Trigger(1);
  ASSERT_TRUE(rt.Run());
  rt.Untrigger(4);
  ASSERT_TRUE(rt.Run());
  EXPECT_TRUE(rt.RegionMembers(0).empty());
  EXPECT_EQ(rt.RegionSize(0), 0);
  EXPECT_EQ(rt.LargestRegionSize(), 0);
  EXPECT_TRUE(rt.LargestRegions().empty());
}

TEST_P(RegionModesTest, RetriggerRestoresRegion) {
  SensorField field = SmallField();
  RegionRuntime rt(field, Opts(GetParam()));
  rt.Trigger(4);
  ASSERT_TRUE(rt.Run());
  rt.Untrigger(4);
  ASSERT_TRUE(rt.Run());
  rt.Trigger(4);
  ASSERT_TRUE(rt.Run());
  EXPECT_EQ(rt.RegionSize(0), 5);
}

INSTANTIATE_TEST_SUITE_P(AllModes, RegionModesTest,
                         ::testing::Values(ProvMode::kSet,
                                           ProvMode::kAbsorption,
                                           ProvMode::kRelative));

TEST(RegionAggregatesTest, LargestRegionsTracksTies) {
  SensorGridOptions options;
  options.grid_dim = 4;
  options.spacing_m = 10.0;
  options.k = 12.0;
  options.num_seeds = 2;
  SensorField field = MakeSensorGrid(options);
  field.seed_sensors = {0, 15};  // Opposite corners; regions are disjoint.
  RegionRuntime rt(field, Opts(ProvMode::kAbsorption));
  rt.Trigger(0);
  rt.Trigger(15);
  ASSERT_TRUE(rt.Run());
  // Corner seeds each have 2 lattice neighbors within 15m: size 3 regions.
  EXPECT_EQ(rt.RegionSize(0), 3);
  EXPECT_EQ(rt.RegionSize(1), 3);
  EXPECT_EQ(rt.LargestRegions(), (std::vector<int>{0, 1}));
  // Growing region 0 breaks the tie.
  rt.Trigger(1);
  ASSERT_TRUE(rt.Run());
  EXPECT_EQ(rt.LargestRegions(), (std::vector<int>{0}));
}

TEST(RegionRandomTest, RandomTriggerSequencesMatchReference) {
  SensorGridOptions options;
  options.grid_dim = 5;
  options.spacing_m = 10.0;
  options.k = 15.0;
  options.num_seeds = 3;
  options.seed = 11;
  SensorField field = MakeSensorGrid(options);
  for (ProvMode prov :
       {ProvMode::kSet, ProvMode::kAbsorption, ProvMode::kRelative}) {
    RegionRuntime rt(field, Opts(prov));
    std::vector<bool> triggered(
        static_cast<size_t>(field.num_sensors), false);
    Rng rng(99);
    for (int step = 0; step < 40; ++step) {
      int sensor = static_cast<int>(
          rng.NextBounded(static_cast<uint64_t>(field.num_sensors)));
      if (triggered[static_cast<size_t>(sensor)]) {
        rt.Untrigger(sensor);
        triggered[static_cast<size_t>(sensor)] = false;
      } else {
        rt.Trigger(sensor);
        triggered[static_cast<size_t>(sensor)] = true;
      }
      ASSERT_TRUE(rt.Run());
      auto expected = ReferenceRegions(field, triggered);
      for (size_t r = 0; r < expected.size(); ++r) {
        ASSERT_EQ(rt.RegionMembers(static_cast<int>(r)), expected[r])
            << ProvModeName(prov) << " step " << step << " region " << r;
        ASSERT_EQ(rt.RegionSize(static_cast<int>(r)),
                  static_cast<int64_t>(expected[r].size()));
      }
    }
  }
}

TEST(RegionTest, DoubleTriggerIsIdempotent) {
  SensorField field = SmallField();
  RegionRuntime rt(field, Opts(ProvMode::kAbsorption));
  rt.Trigger(4);
  rt.Trigger(4);
  ASSERT_TRUE(rt.Run());
  EXPECT_EQ(rt.RegionSize(0), 5);
  rt.Untrigger(4);
  ASSERT_TRUE(rt.Run());
  EXPECT_EQ(rt.RegionSize(0), 0);
}

TEST(RegionTest, UntriggerUnknownSensorIsNoOp) {
  SensorField field = SmallField();
  RegionRuntime rt(field, Opts(ProvMode::kAbsorption));
  rt.Untrigger(3);
  ASSERT_TRUE(rt.Run());
  EXPECT_EQ(rt.ViewSize(), 0u);
}

}  // namespace
}  // namespace recnet
