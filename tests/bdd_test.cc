#include "bdd/bdd.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace recnet {
namespace bdd {
namespace {

class BddTest : public ::testing::Test {
 protected:
  Manager mgr_;
};

TEST_F(BddTest, TerminalsAreFixed) {
  EXPECT_EQ(mgr_.False(), kFalse);
  EXPECT_EQ(mgr_.True(), kTrue);
  EXPECT_TRUE(mgr_.IsTerminal(kFalse));
  EXPECT_TRUE(mgr_.IsTerminal(kTrue));
}

TEST_F(BddTest, MakeVarIsCanonical) {
  NodeIndex a1 = mgr_.MakeVar(3);
  NodeIndex a2 = mgr_.MakeVar(3);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, mgr_.MakeVar(4));
}

TEST_F(BddTest, AndOrTerminalRules) {
  NodeIndex x = mgr_.MakeVar(0);
  EXPECT_EQ(mgr_.And(x, kFalse), kFalse);
  EXPECT_EQ(mgr_.And(x, kTrue), x);
  EXPECT_EQ(mgr_.And(x, x), x);
  EXPECT_EQ(mgr_.Or(x, kTrue), kTrue);
  EXPECT_EQ(mgr_.Or(x, kFalse), x);
  EXPECT_EQ(mgr_.Or(x, x), x);
}

TEST_F(BddTest, Commutativity) {
  NodeIndex x = mgr_.MakeVar(0);
  NodeIndex y = mgr_.MakeVar(1);
  EXPECT_EQ(mgr_.And(x, y), mgr_.And(y, x));
  EXPECT_EQ(mgr_.Or(x, y), mgr_.Or(y, x));
}

TEST_F(BddTest, NotIsInvolution) {
  NodeIndex x = mgr_.MakeVar(0);
  NodeIndex y = mgr_.MakeVar(1);
  NodeIndex f = mgr_.Or(mgr_.And(x, y), mgr_.Not(x));
  EXPECT_EQ(mgr_.Not(mgr_.Not(f)), f);
  EXPECT_EQ(mgr_.Not(kTrue), kFalse);
  EXPECT_EQ(mgr_.Not(kFalse), kTrue);
}

TEST_F(BddTest, ExcludedMiddle) {
  NodeIndex x = mgr_.MakeVar(2);
  EXPECT_EQ(mgr_.Or(x, mgr_.Not(x)), kTrue);
  EXPECT_EQ(mgr_.And(x, mgr_.Not(x)), kFalse);
}

// The property absorption provenance relies on (paper Section 4):
// a ∧ (a ∨ b) ≡ a ∨ (a ∧ b) ≡ a — canonical ROBDDs apply it automatically.
TEST_F(BddTest, AbsorptionLaw) {
  NodeIndex a = mgr_.MakeVar(0);
  NodeIndex b = mgr_.MakeVar(1);
  EXPECT_EQ(mgr_.And(a, mgr_.Or(a, b)), a);
  EXPECT_EQ(mgr_.Or(a, mgr_.And(a, b)), a);
}

TEST_F(BddTest, AbsorptionOfLongerDerivations) {
  // A derivation that conjoins a superset of another derivation's base
  // tuples is absorbed: p1 ∨ (p1 ∧ p2 ∧ p3) = p1.
  NodeIndex p1 = mgr_.MakeVar(1);
  NodeIndex p2 = mgr_.MakeVar(2);
  NodeIndex p3 = mgr_.MakeVar(3);
  NodeIndex longer = mgr_.And(p1, mgr_.And(p2, p3));
  EXPECT_EQ(mgr_.Or(p1, longer), p1);
}

TEST_F(BddTest, RestrictFixesVariable) {
  NodeIndex x = mgr_.MakeVar(0);
  NodeIndex y = mgr_.MakeVar(1);
  NodeIndex f = mgr_.Or(mgr_.And(x, y), mgr_.Not(x));  // if x then y else 1
  EXPECT_EQ(mgr_.Restrict(f, 0, true), y);
  EXPECT_EQ(mgr_.Restrict(f, 0, false), kTrue);
  // Restricting an absent variable is the identity.
  EXPECT_EQ(mgr_.Restrict(f, 9, false), f);
}

TEST_F(BddTest, RestrictAllFalseKillsDerivations) {
  NodeIndex p1 = mgr_.MakeVar(1);
  NodeIndex p2 = mgr_.MakeVar(2);
  NodeIndex p3 = mgr_.MakeVar(3);
  // (p1 ∧ p2) ∨ p3.
  NodeIndex f = mgr_.Or(mgr_.And(p1, p2), p3);
  EXPECT_EQ(mgr_.RestrictAllFalse(f, {3}), mgr_.And(p1, p2));
  EXPECT_EQ(mgr_.RestrictAllFalse(f, {1, 3}), kFalse);
  EXPECT_EQ(mgr_.RestrictAllFalse(f, {2, 3}), kFalse);
}

TEST_F(BddTest, CountNodesAndSerializedSize) {
  EXPECT_EQ(mgr_.CountNodes(kTrue), 0u);
  NodeIndex x = mgr_.MakeVar(0);
  EXPECT_EQ(mgr_.CountNodes(x), 1u);
  EXPECT_EQ(mgr_.SerializedSizeBytes(x), 8u + 10u);
  NodeIndex y = mgr_.MakeVar(1);
  NodeIndex f = mgr_.And(x, y);
  EXPECT_EQ(mgr_.CountNodes(f), 2u);
}

TEST_F(BddTest, SupportAndDependsOn) {
  NodeIndex x = mgr_.MakeVar(0);
  NodeIndex y = mgr_.MakeVar(5);
  NodeIndex z = mgr_.MakeVar(9);
  NodeIndex f = mgr_.Or(mgr_.And(x, y), z);
  std::vector<Var> support;
  mgr_.Support(f, &support);
  EXPECT_EQ(support, (std::vector<Var>{0, 5, 9}));
  EXPECT_TRUE(mgr_.DependsOn(f, 5));
  EXPECT_FALSE(mgr_.DependsOn(f, 4));
}

TEST_F(BddTest, AnyWitnessFindsSatisfyingAssignment) {
  NodeIndex p1 = mgr_.MakeVar(1);
  NodeIndex p2 = mgr_.MakeVar(2);
  NodeIndex f = mgr_.And(p1, p2);
  std::vector<std::pair<Var, bool>> assignment;
  ASSERT_TRUE(mgr_.AnyWitness(f, &assignment));
  std::unordered_map<Var, bool> truth(assignment.begin(), assignment.end());
  EXPECT_TRUE(mgr_.Evaluate(f, truth));
  EXPECT_FALSE(mgr_.AnyWitness(kFalse, &assignment));
}

TEST_F(BddTest, EvaluateDefaultsAbsentVarsToFalse) {
  NodeIndex p1 = mgr_.MakeVar(1);
  NodeIndex p2 = mgr_.MakeVar(2);
  NodeIndex f = mgr_.Or(p1, p2);
  EXPECT_FALSE(mgr_.Evaluate(f, {}));
  EXPECT_TRUE(mgr_.Evaluate(f, {{1, true}}));
}

TEST_F(BddTest, HandleRefCountingAllowsGc) {
  size_t before = mgr_.live_nodes();
  {
    Bdd a(&mgr_, mgr_.MakeVar(0));
    Bdd b(&mgr_, mgr_.MakeVar(1));
    Bdd f = a.And(b).Or(a.Not());
    EXPECT_GT(mgr_.live_nodes(), before);
    mgr_.GarbageCollect();
    // f is externally referenced: it must survive.
    EXPECT_FALSE(f.IsFalse());
    std::vector<Var> support;
    mgr_.Support(f.index(), &support);
    EXPECT_EQ(support.size(), 2u);
  }
  mgr_.GarbageCollect();
  EXPECT_EQ(mgr_.live_nodes(), before);
}

TEST_F(BddTest, GcPreservesSemantics) {
  Bdd x(&mgr_, mgr_.MakeVar(0));
  Bdd y(&mgr_, mgr_.MakeVar(1));
  Bdd f = x.And(y);
  // Create and drop garbage.
  for (int i = 0; i < 100; ++i) {
    Bdd g(&mgr_, mgr_.MakeVar(static_cast<Var>(i + 10)));
    Bdd h = g.Or(f);
    (void)h;
  }
  mgr_.GarbageCollect();
  // Rebuilt expression must be pointer-equal to the surviving one
  // (canonicity across GC).
  EXPECT_EQ(x.And(y).index(), f.index());
}

// Regression: Diff and RestrictAllFalse chain operations whose entry points
// may garbage-collect; intermediates must be pinned. A tiny GC threshold
// forces collections inside the chains.
TEST(BddGcStressTest, DiffAndRestrictSurviveAggressiveGc) {
  Manager::Options options;
  options.gc_threshold = 512;
  options.cache_size = 1 << 12;
  Manager mgr(options);
  Rng rng(17);
  std::vector<Bdd> pool;
  for (Var v = 0; v < 12; ++v) pool.emplace_back(&mgr, mgr.MakeVar(v));
  for (int step = 0; step < 60; ++step) {
    const Bdd& a = pool[rng.NextBounded(pool.size())];
    const Bdd& b = pool[rng.NextBounded(pool.size())];
    Bdd d = a.Diff(b);
    // a ∧ ¬b ∧ b = false always.
    EXPECT_TRUE(d.And(b).IsFalse());
    Bdd u = a.Or(b);
    Bdd r = u.RestrictAllFalse({0, 5, 11});
    // Restricting variables never *adds* satisfying assignments w.r.t. the
    // all-false completion: r evaluated under all-false == u under
    // all-false.
    EXPECT_EQ(mgr.Evaluate(r.index(), {}), mgr.Evaluate(u.index(), {}));
    if (pool.size() < 40) pool.push_back(u);
    if (step % 10 == 9) mgr.GarbageCollect();  // Force GC inside the mix.
  }
  EXPECT_GT(mgr.gc_runs(), 0u);
}

// Regression: recursive BDD operations must not hold references into the
// node vector across calls that can reallocate it.
TEST(BddGcStressTest, DeepNotChainsSurviveNodeStoreGrowth) {
  Manager mgr;
  NodeIndex f = mgr.False();
  for (Var v = 0; v < 200; ++v) {
    Bdd pin(&mgr, f);
    NodeIndex conj = mgr.And(mgr.MakeVar(v),
                             v + 1 < 200 ? mgr.MakeVar(v + 1) : mgr.True());
    Bdd pin2(&mgr, conj);
    f = mgr.Or(f, conj);
  }
  Bdd root(&mgr, f);
  NodeIndex g = mgr.Not(f);
  EXPECT_EQ(mgr.Not(g), f);
  EXPECT_EQ(mgr.And(f, g), kFalse);
}

TEST_F(BddTest, ToDotRendersGraph) {
  Bdd x(&mgr_, mgr_.MakeVar(0));
  Bdd y(&mgr_, mgr_.MakeVar(1));
  Bdd f = x.And(y);
  std::string dot = mgr_.ToDot(f.index());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("x0"), std::string::npos);
  EXPECT_NE(dot.find("x1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Property test: random expressions evaluated against a brute-force truth
// table over n variables.
// ---------------------------------------------------------------------------

// A reference Boolean expression as a truth table bitmap over kPropVars
// variables.
constexpr int kPropVars = 5;

struct Expr {
  NodeIndex node;
  uint32_t truth;  // Bit i = value under assignment i.
};

class BddPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BddPropertyTest, RandomExpressionsMatchTruthTables) {
  Manager mgr;
  Rng rng(GetParam());
  std::vector<Expr> pool;
  for (Var v = 0; v < kPropVars; ++v) {
    uint32_t truth = 0;
    for (uint32_t a = 0; a < (1u << kPropVars); ++a) {
      if ((a >> v) & 1u) truth |= (1u << a);
    }
    pool.push_back(Expr{mgr.MakeVar(v), truth});
  }
  for (int step = 0; step < 200; ++step) {
    const Expr& a = pool[rng.NextBounded(pool.size())];
    const Expr& b = pool[rng.NextBounded(pool.size())];
    Expr out{};
    switch (rng.NextBounded(4)) {
      case 0:
        out = Expr{mgr.And(a.node, b.node), a.truth & b.truth};
        break;
      case 1:
        out = Expr{mgr.Or(a.node, b.node), a.truth | b.truth};
        break;
      case 2:
        // All-ones mask over the 2^kPropVars truth-table bits, computed in
        // 64-bit so the shift is defined when the table fills the word.
        out = Expr{mgr.Not(a.node),
                   ~a.truth & static_cast<uint32_t>(
                                  (uint64_t{1} << (1u << kPropVars)) - 1u)};
        break;
      default: {
        Var v = static_cast<Var>(rng.NextBounded(kPropVars));
        bool value = rng.NextBool(0.5);
        uint32_t truth = 0;
        for (uint32_t asg = 0; asg < (1u << kPropVars); ++asg) {
          uint32_t fixed = value ? (asg | (1u << v)) : (asg & ~(1u << v));
          if ((a.truth >> fixed) & 1u) truth |= (1u << asg);
        }
        out = Expr{mgr.Restrict(a.node, v, value), truth};
        break;
      }
    }
    // Validate against every assignment.
    for (uint32_t asg = 0; asg < (1u << kPropVars); ++asg) {
      std::unordered_map<Var, bool> truth_map;
      for (Var v = 0; v < kPropVars; ++v) {
        truth_map[v] = (asg >> v) & 1u;
      }
      EXPECT_EQ(mgr.Evaluate(out.node, truth_map),
                static_cast<bool>((out.truth >> asg) & 1u))
          << "step " << step << " assignment " << asg;
    }
    // Canonicity: equal truth tables iff equal node indices.
    for (const Expr& e : pool) {
      EXPECT_EQ(e.truth == out.truth, e.node == out.node);
    }
    pool.push_back(out);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Complement-edge representation invariants.
// ---------------------------------------------------------------------------

// Builds a random absorption-shaped function: an Or of short products over a
// small variable window (the repo's provenance workload shape).
BddRef RandomFunction(Manager& mgr, Rng& rng, int terms) {
  BddRef f = kFalse;
  for (int t = 0; t < terms; ++t) {
    Var base = static_cast<Var>(rng.NextBounded(12));
    BddRef p = kTrue;
    for (Var j = 0; j < 3; ++j) {
      p = mgr.And(p, mgr.MakeVar(base + j));
    }
    f = mgr.Or(f, p);
  }
  return f;
}

TEST_F(BddTest, NotIsTagFlipWithoutTableTraffic) {
  Rng rng(101);
  BddRef f = RandomFunction(mgr_, rng, 8);
  const uint64_t probes = mgr_.unique_probes();
  const size_t nodes = mgr_.allocated_nodes();
  BddRef g = f;
  for (int i = 0; i < 1000; ++i) {
    g = mgr_.Not(g);
    // Involution as identity of refs, not just semantic equality.
    if (i % 2 == 1) EXPECT_EQ(g, f);
  }
  EXPECT_EQ(mgr_.Not(f), f ^ 1u);
  EXPECT_EQ(mgr_.unique_probes(), probes);
  EXPECT_EQ(mgr_.allocated_nodes(), nodes);
}

TEST_F(BddTest, ThenEdgesAreAlwaysRegular) {
  // The canonicity rule: complement bits live on else-edges and roots only;
  // every interned node's then-edge is a regular (untagged) ref.
  Rng rng(202);
  std::vector<BddRef> roots;
  for (int i = 0; i < 16; ++i) roots.push_back(RandomFunction(mgr_, rng, 6));
  std::vector<BddRef> stack = roots;
  while (!stack.empty()) {
    BddRef f = stack.back();
    stack.pop_back();
    if (mgr_.IsTerminal(f)) continue;
    const BddRef reg = f & ~1u;
    EXPECT_EQ(mgr_.high_of(reg) & 1u, 0u)
        << "complemented then-edge reachable from root";
    stack.push_back(mgr_.low_of(reg));
    stack.push_back(mgr_.high_of(reg));
  }
}

TEST_F(BddTest, DeMorganDualHitsTheSameCacheEntries) {
  Rng rng(303);
  BddRef a = RandomFunction(mgr_, rng, 6);
  BddRef b = RandomFunction(mgr_, rng, 6);
  // Or is computed as ¬And(¬a, ¬b), so the forward pass fully populates the
  // And cache for the dual call: re-deriving it must be pure cache hits with
  // zero fresh nodes.
  BddRef f = mgr_.Or(a, b);
  const uint64_t hits = mgr_.cache_hits();
  const size_t nodes = mgr_.allocated_nodes();
  BddRef dual = mgr_.And(mgr_.Not(a), mgr_.Not(b));
  EXPECT_EQ(dual, mgr_.Not(f));
  EXPECT_GT(mgr_.cache_hits(), hits);
  EXPECT_EQ(mgr_.allocated_nodes(), nodes);
}

TEST_F(BddTest, DiffOverComplementedOperandsSharesCache) {
  Rng rng(404);
  BddRef a = RandomFunction(mgr_, rng, 6);
  BddRef b = RandomFunction(mgr_, rng, 6);
  // Diff(a, b) = And(a, ¬b): the same tagged pair as Diff(¬b̄, b) etc.; no
  // negation is ever materialized, so repeating over complemented operands
  // is cache-hit-only after the first evaluation.
  BddRef d = mgr_.Diff(mgr_.Not(a), mgr_.Not(b));
  const uint64_t hits = mgr_.cache_hits();
  const size_t nodes = mgr_.allocated_nodes();
  EXPECT_EQ(mgr_.Diff(mgr_.Not(a), mgr_.Not(b)), d);
  EXPECT_EQ(mgr_.And(mgr_.Not(a), b), d);  // Same And pair by definition.
  EXPECT_GT(mgr_.cache_hits(), hits);
  EXPECT_EQ(mgr_.allocated_nodes(), nodes);
}

// Randomized canonicity oracle: semantically equal functions built along
// different operation paths must intern to the identical tagged ref. The
// oracle is the set of satisfying assignments over kPropVars variables.
class ComplementCanonicityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ComplementCanonicityTest, EquivalentFormsInternIdentically) {
  Manager mgr;
  Rng rng(GetParam());
  for (int step = 0; step < 100; ++step) {
    BddRef a = RandomFunction(mgr, rng, 1 + static_cast<int>(
                                               rng.NextBounded(5)));
    BddRef b = RandomFunction(mgr, rng, 1 + static_cast<int>(
                                               rng.NextBounded(5)));
    // Identity of refs across derivation paths (all are distinct recursion
    // shapes before reduction):
    EXPECT_EQ(mgr.Or(a, b), mgr.Not(mgr.And(mgr.Not(a), mgr.Not(b))));
    EXPECT_EQ(mgr.Diff(a, b), mgr.And(a, mgr.Not(b)));
    EXPECT_EQ(mgr.Not(mgr.Or(a, b)), mgr.And(mgr.Not(a), mgr.Not(b)));
    EXPECT_EQ(mgr.And(a, mgr.Not(a)), kFalse);
    EXPECT_EQ(mgr.Or(a, mgr.Not(a)), kTrue);
    EXPECT_EQ(mgr.Not(mgr.Not(a)), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComplementCanonicityTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace bdd
}  // namespace recnet
