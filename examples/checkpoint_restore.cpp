// Checkpoint / restore: a session survives a process restart. A multi-view
// session is built up, checkpointed to disk, torn down, and restored into a
// fresh Session — then the workload resumes (deletions this time) and the
// example asserts the restored trajectory matches an uninterrupted control
// session scan for scan and counter for counter.
//
// Build & run:  cmake -B build && cmake --build build -j
//               ./build/example_checkpoint_restore

#include <cstdio>
#include <memory>

#include "engine/session.h"

namespace {

constexpr char kReachable[] = R"(
  reachable(x,y) :- link(x,y).
  reachable(x,y) :- link(x,z), reachable(z,y).
)";
constexpr char kSpan[] = R"(
  span(x,y) :- link(x,y).
  span(x,y) :- span(x,z), link(z,y).
)";

std::unique_ptr<recnet::Session> MakeSession() {
  recnet::SessionOptions options;
  options.num_nodes = 8;
  auto session = std::make_unique<recnet::Session>(options);
  return session;
}

void AddPrograms(recnet::Session* session) {
  RECNET_CHECK(session->AddProgram(kReachable, {}).ok());
  RECNET_CHECK(session->AddProgram(kSpan, {}).ok());
}

// Phase 1 of the workload: a chain plus a shortcut, run to fixpoint.
void InsertPhase(recnet::Session* session) {
  for (int i = 0; i < 7; ++i) {
    RECNET_CHECK(session->Insert("link", {double(i), double(i + 1)}).ok());
  }
  RECNET_CHECK(session->Insert("link", {0, 4}).ok());
  RECNET_CHECK(session->Apply().ok());
}

// Phase 2, resumed after the restore: retract the shortcut and a chain
// edge, splitting the graph.
void DeletePhase(recnet::Session* session) {
  RECNET_CHECK(session->Delete("link", {0, 4}).ok());
  RECNET_CHECK(session->Delete("link", {3, 4}).ok());
  RECNET_CHECK(session->Apply().ok());
}

}  // namespace

int main() {
  const char* path = "/tmp/recnet_example.ckpt";

  // An uninterrupted control session runs both phases back to back.
  std::unique_ptr<recnet::Session> control = MakeSession();
  AddPrograms(control.get());
  InsertPhase(control.get());
  DeletePhase(control.get());

  // The checkpointed session stops after phase 1...
  {
    std::unique_ptr<recnet::Session> session = MakeSession();
    AddPrograms(session.get());
    InsertPhase(session.get());
    recnet::Status st = session->Checkpoint(path);
    RECNET_CHECK(st.ok());
    std::printf("checkpointed %zu views to %s\n", session->num_views(), path);
  }  // ...and is destroyed: the "process restart".

  // A fresh, empty session restores the snapshot (programs come from the
  // snapshot itself) and resumes phase 2.
  std::unique_ptr<recnet::Session> restored = MakeSession();
  recnet::Status st = restored->Restore(path);
  RECNET_CHECK(st.ok());
  std::printf("restored %zu views\n", restored->num_views());
  DeletePhase(restored.get());

  // The restored trajectory is bit-identical to the uninterrupted one:
  // every view's scan and every view's traffic counters agree.
  for (size_t i = 0; i < control->num_views(); ++i) {
    const char* view_name = i == 0 ? "reachable" : "span";
    auto expect = control->view(i)->Scan(view_name);
    auto got = restored->view(i)->Scan(view_name);
    RECNET_CHECK(expect.ok() && got.ok());
    RECNET_CHECK(expect.value() == got.value());
    recnet::RunMetrics em = control->view(i)->Metrics();
    recnet::RunMetrics rm = restored->view(i)->Metrics();
    RECNET_CHECK_EQ(em.messages, rm.messages);
    RECNET_CHECK_EQ(em.kill_messages, rm.kill_messages);
    std::printf("%-10s %zu tuples, %llu messages — match\n", view_name,
                got.value().size(),
                static_cast<unsigned long long>(rm.messages));
  }
  std::printf("restored session is bit-identical to the uninterrupted one\n");
  return 0;
}
