// Datalog frontend: write a recursive network view in Datalog, have the
// planner lower it onto the distributed Figure-4 plan, and execute it through
// recnet::Engine — the program text alone drives which runtime runs and what
// the relations are called.
//
// To prove the plan drives execution (nothing is hardcoded to `reachable` /
// `link`), this program uses its own names (`span` over `wire`), the paper's
// alternate right-linear join orientation, and in-program ground facts.

#include <cstdio>

#include "engine/engine.h"

int main() {
  const char* program = R"(
    % Transitive closure, right-linear orientation.
    span(x,y) :- wire(x,y).
    span(x,y) :- span(x,z), wire(z,y).
    % Derived aggregate view: how many nodes each node can span to.
    fanout(x,count<y>) :- span(x,y).
    % Initial EDB, loaded by Engine::Compile.
    wire(0,1). wire(1,2). wire(2,3). wire(3,1). wire(2,4).
  )";

  recnet::EngineOptions options;
  options.num_nodes = 5;
  options.runtime.prov = recnet::ProvMode::kAbsorption;

  auto engine = recnet::Engine::Compile(program, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf("plan: %s\n", (*engine)->plan().ToString().c_str());
  if (!(*engine)->Apply().ok()) return 1;

  auto fanout = (*engine)->Scan("fanout");
  auto rows = (*engine)->Scan("span");
  if (!fanout.ok() || !rows.ok()) return 1;
  for (int src = 0; src < options.num_nodes; ++src) {
    std::printf("span(%d, *) =", src);
    for (const recnet::Tuple& t : *rows) {
      if (t.IntAt(0) == src) std::printf(" %lld", (long long)t.IntAt(1));
    }
    for (const recnet::Tuple& t : *fanout) {
      if (t.IntAt(0) == src) {
        std::printf("   | fanout(%d) = %lld", src, (long long)t.IntAt(1));
      }
    }
    std::printf("\n");
  }

  // Incremental maintenance through the same facade: drop wire(2,3).
  if (!(*engine)->Delete("wire", {2, 3}).ok()) return 1;
  if (!(*engine)->Apply().ok()) return 1;
  auto still = (*engine)->Contains("span", {0, 3});
  if (!still.ok()) return 1;
  std::printf("after deleting wire(2,3): span(0,3) = %s\n",
              *still ? "yes" : "no");
  return 0;
}
