// Datalog frontend: write the paper's Query 1 in Datalog, have the planner
// lower it onto the distributed Figure-4 plan, and execute it with
// absorption provenance.

#include <cstdio>

#include "datalog/parser.h"
#include "datalog/planner.h"
#include "engine/views.h"

int main() {
  const char* program = R"(
    % Network reachability (paper Query 1).
    reachable(x,y) :- link(x,y).
    reachable(x,y) :- link(x,z), reachable(z,y).
    fanout(x,count<y>) :- reachable(x,y).
  )";

  auto parsed = recnet::datalog::Parse(program);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed program:\n%s", parsed->ToString().c_str());

  auto plan = recnet::datalog::PlanSource(program);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("plan: %s\n", plan->ToString().c_str());

  // Execute the lowered plan over a small EDB.
  recnet::RuntimeOptions options;
  options.prov = recnet::ProvMode::kAbsorption;
  recnet::ReachabilityView view(5, options);
  const int edb[][2] = {{0, 1}, {1, 2}, {2, 3}, {3, 1}, {2, 4}};
  for (auto [s, d] : edb) view.InsertLink(s, d);
  if (!view.Apply().ok()) return 1;

  for (int src = 0; src < 5; ++src) {
    std::printf("%s(%d, *) =", plan->view.c_str(), src);
    for (int dst : view.ReachableFrom(src)) std::printf(" %d", dst);
    // The planner recognized the aggregate view fanout(x, count<y>).
    std::printf("   | %s(%d) = %zu\n", plan->agg_views[0].name.c_str(), src,
                view.ReachableFrom(src).size());
  }
  return 0;
}
