// Declarative networking scenario (paper Section 2, Queries 1-2): build a
// GT-ITM-style transit-stub Internet topology, compile the shortest-path
// query from Datalog, and react to a link failure — all through
// recnet::Engine.
//
// Usage: example_declarative_networking [target_links]

#include <cstdio>
#include <cstdlib>

#include "engine/engine.h"
#include "topology/transit_stub.h"
#include "topology/workload.h"

int main(int argc, char** argv) {
  int target_links = argc > 1 ? std::atoi(argv[1]) : 60;

  recnet::Topology topo =
      recnet::MakeTransitStubWithTargetLinks(target_links, /*dense=*/true, 1);
  std::printf("topology: %d routers, %zu bidirectional links\n",
              topo.num_nodes, topo.links.size());

  recnet::EngineOptions options;
  options.num_nodes = topo.num_nodes;
  options.aggsel = recnet::AggSelPolicy::kMulti;
  options.runtime.prov = recnet::ProvMode::kAbsorption;
  options.runtime.ship = recnet::ShipMode::kLazy;
  options.runtime.num_physical = 12;  // Paper default cluster size.

  // Query 2. The dialect has no arithmetic: the head's cost column stands
  // for the runtime-computed sum, and vec/length are maintained internally.
  auto engine = recnet::Engine::Compile(R"(
    path(x,y,c) :- link(x,y,c).
    path(x,y,c) :- link(x,z,c), path(z,y,c2).
    minCost(x,y,min<c>) :- path(x,y,c).
  )", options);
  if (!engine.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  recnet::Engine& paths = **engine;

  for (const recnet::LinkTuple& l : recnet::DirectedLinks(topo)) {
    paths.Insert("link", {double(l.src), double(l.dst), l.cost_ms});
  }
  if (!paths.Apply().ok()) {
    std::fprintf(stderr, "budget exceeded\n");
    return 1;
  }

  // Inspect a transit-to-stub route: node 0 is a transit router; the last
  // node is deep inside a stub domain. The path-view lookup surfaces the
  // runtime's auxiliary columns (src, dst, cost, vec, length).
  int src = 0;
  int dst = topo.num_nodes - 1;
  auto route = paths.Lookup("path", {double(src), double(dst)});
  if (route.ok()) {
    std::printf("route %d -> %d: cheapest %.0f ms via %s (%lld hops min)\n",
                src, dst, route->DoubleAt(2), route->StringAt(3).c_str(),
                (long long)route->IntAt(4));
  }

  // Fail the first link on the cheapest path's first hop and re-converge.
  recnet::TopoLink failed = topo.links.front();
  std::printf("failing link %d <-> %d ...\n", failed.a, failed.b);
  paths.Delete("link", {double(failed.a), double(failed.b)});
  paths.Delete("link", {double(failed.b), double(failed.a)});
  if (!paths.Apply().ok()) return 1;
  auto cost = paths.Lookup("minCost", {double(src), double(dst)});
  if (cost.ok()) {
    auto vec = paths.Lookup("path", {double(src), double(dst)});
    std::printf("route %d -> %d after failure: %.0f ms via %s\n", src, dst,
                cost->DoubleAt(2), vec.ok() ? vec->StringAt(3).c_str() : "?");
  } else {
    std::printf("route %d -> %d is gone after failure\n", src, dst);
  }

  std::printf("totals: %s\n", paths.Metrics().ToString().c_str());
  return 0;
}
