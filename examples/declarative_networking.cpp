// Declarative networking scenario (paper Section 2, Queries 1-2): build a
// GT-ITM-style transit-stub Internet topology, maintain shortest/cheapest
// paths with multi-aggregate selection, and react to a link failure.
//
// Usage: example_declarative_networking [target_links]

#include <cstdio>
#include <cstdlib>

#include "engine/views.h"
#include "topology/transit_stub.h"
#include "topology/workload.h"

int main(int argc, char** argv) {
  int target_links = argc > 1 ? std::atoi(argv[1]) : 60;

  recnet::Topology topo =
      recnet::MakeTransitStubWithTargetLinks(target_links, /*dense=*/true, 1);
  std::printf("topology: %d routers, %zu bidirectional links\n",
              topo.num_nodes, topo.links.size());

  recnet::RuntimeOptions options;
  options.prov = recnet::ProvMode::kAbsorption;
  options.ship = recnet::ShipMode::kLazy;
  options.num_physical = 12;  // Paper default cluster size.

  recnet::ShortestPathView paths(topo.num_nodes, options,
                                 recnet::AggSelPolicy::kMulti);
  for (const recnet::LinkTuple& l : recnet::DirectedLinks(topo)) {
    paths.InsertLink(l.src, l.dst, l.cost_ms);
  }
  if (!paths.Apply().ok()) {
    std::fprintf(stderr, "budget exceeded\n");
    return 1;
  }

  // Inspect a transit-to-stub route: node 0 is a transit router; the last
  // node is deep inside a stub domain.
  int src = 0;
  int dst = topo.num_nodes - 1;
  auto cost = paths.MinCost(src, dst);
  auto hops = paths.MinHops(src, dst);
  if (cost && hops) {
    std::printf("route %d -> %d: cheapest %.0f ms via %s (%lld hops min)\n",
                src, dst, *cost, paths.CheapestPath(src, dst)->c_str(),
                static_cast<long long>(*hops));
  }

  // Fail the first link on the cheapest path's first hop and re-converge.
  recnet::TopoLink failed = topo.links.front();
  std::printf("failing link %d <-> %d ...\n", failed.a, failed.b);
  paths.DeleteLink(failed.a, failed.b);
  paths.DeleteLink(failed.b, failed.a);
  if (!paths.Apply().ok()) return 1;
  cost = paths.MinCost(src, dst);
  if (cost) {
    std::printf("route %d -> %d after failure: %.0f ms via %s\n", src, dst,
                *cost, paths.CheapestPath(src, dst)->c_str());
  } else {
    std::printf("route %d -> %d is gone after failure\n", src, dst);
  }

  std::printf("totals: %s\n", paths.Metrics().ToString().c_str());
  return 0;
}
