// Multi-view sessions: two recursive programs co-resident on one substrate
// (one router, one BDD manager, one shared link EDB), the paper's
// many-views-over-one-network deployment. Each program keeps its own
// incremental maintenance and its own traffic counters; base facts are
// loaded once per session and fan out to every view that declares them.
//
// Build & run:  cmake -B build && cmake --build build -j
//               ./build/example_multi_view_session

#include <cstdio>

#include "engine/session.h"

int main() {
  recnet::SessionOptions options;
  options.num_nodes = 6;
  recnet::Session session(options);

  // View 1: transitive closure of `link` (paper Query 1).
  auto reachable = session.AddProgram(R"(
    reachable(x,y) :- link(x,y).
    reachable(x,y) :- link(x,z), reachable(z,y).
    fanout(x,count<y>) :- reachable(x,y).
  )", {});
  RECNET_CHECK(reachable.ok());

  // View 2: the right-linear closure over the SAME link EDB — a second
  // program, compiled into the same session, sharing the substrate.
  auto spans = session.AddProgram(R"(
    span(x,y) :- link(x,y).
    span(x,y) :- span(x,z), link(z,y).
  )", {});
  RECNET_CHECK(spans.ok());

  // One insert feeds both views; one Apply converges both in one shared
  // fixpoint drain.
  for (int i = 0; i < 5; ++i) {
    RECNET_CHECK(session.Insert("link", {double(i), double(i + 1)}).ok());
  }
  RECNET_CHECK(session.Apply().ok());

  auto reach_rows = (*reachable)->Scan("reachable");
  auto span_rows = (*spans)->Scan("span");
  RECNET_CHECK(reach_rows.ok() && span_rows.ok());
  std::printf("reachable: %zu tuples   span: %zu tuples\n",
              reach_rows->size(), span_rows->size());

  // Per-view accounting on the shared router: each view reads exactly the
  // counters it would have produced on a private one.
  std::printf("reachable view traffic: %llu msgs   span view traffic: %llu msgs\n",
              static_cast<unsigned long long>((*reachable)->Metrics().messages),
              static_cast<unsigned long long>((*spans)->Metrics().messages));

  // The node-id space is dynamic: a late fact naming unseen node 9 grows
  // the topology for every graph view in the session.
  RECNET_CHECK(session.Insert("link", {5, 9}).ok());
  RECNET_CHECK(session.Apply().ok());
  std::printf("after link(5,9): %d nodes, reachable(0,9)=%d span(0,9)=%d\n",
              session.num_nodes(),
              int(*(*reachable)->Contains("reachable", {0, 9})),
              int(*(*spans)->Contains("span", {0, 9})));

  // Incremental maintenance stays per-view correct under sharing: deleting
  // the bridge contracts both closures.
  RECNET_CHECK(session.Delete("link", {2, 3}).ok());
  RECNET_CHECK(session.Apply().ok());
  std::printf("after delete link(2,3): reachable(0,9)=%d span(0,9)=%d\n",
              int(*(*reachable)->Contains("reachable", {0, 9})),
              int(*(*spans)->Contains("span", {0, 9})));
  return 0;
}
