// Sensor-network scenario (paper Section 2, Query 3): a 100 m x 100 m grid
// of sensors; a "fire" triggers a contiguous patch of sensors, the region
// view grows from the seed, and the largest-region aggregate tracks it as
// the fire spreads and is extinguished.

#include <cstdio>

#include "engine/views.h"
#include "topology/sensor_grid.h"

int main() {
  recnet::SensorGridOptions grid;
  grid.grid_dim = 10;    // 100 sensors.
  grid.k = 20.0;         // Paper's contiguity threshold.
  grid.num_seeds = 5;    // Five monitored regions.
  grid.seed = 42;
  recnet::SensorField field = recnet::MakeSensorGrid(grid);

  std::printf("sensor field: %d sensors, %zu regions, seeds at:",
              field.num_sensors, field.seed_sensors.size());
  for (int s : field.seed_sensors) std::printf(" %d", s);
  std::printf("\n");

  recnet::RuntimeOptions options;
  options.prov = recnet::ProvMode::kAbsorption;
  options.ship = recnet::ShipMode::kLazy;
  options.num_physical = 12;

  recnet::RegionView regions(field, options);

  // Ignite around seed 0: trigger the seed and everything within 25 m.
  int seed0 = field.seed_sensors[0];
  regions.Trigger(seed0);
  for (int nb : field.neighbors[static_cast<size_t>(seed0)]) {
    regions.Trigger(nb);
  }
  if (!regions.Apply().ok()) return 1;
  std::printf("after ignition: region 0 has %lld sensors; largest region",
              static_cast<long long>(regions.RegionSize(0)));
  for (int r : regions.LargestRegions()) std::printf(" #%d", r);
  std::printf(" (size %lld)\n",
              static_cast<long long>(regions.LargestRegionSize()));

  // The fire spreads: trigger second-ring sensors.
  for (int nb : field.neighbors[static_cast<size_t>(seed0)]) {
    for (int nb2 : field.neighbors[static_cast<size_t>(nb)]) {
      regions.Trigger(nb2);
    }
  }
  if (!regions.Apply().ok()) return 1;
  std::printf("after spread: region 0 has %lld sensors\n",
              static_cast<long long>(regions.RegionSize(0)));

  // Extinguish: sensors stop reporting (soft-state expiry = deletion).
  for (int s = 0; s < field.num_sensors; ++s) regions.Untrigger(s);
  if (!regions.Apply().ok()) return 1;
  std::printf("after extinguishing: region 0 has %lld sensors, largest=%lld\n",
              static_cast<long long>(regions.RegionSize(0)),
              static_cast<long long>(regions.LargestRegionSize()));

  std::printf("totals: %s\n", regions.Metrics().ToString().c_str());
  return 0;
}
