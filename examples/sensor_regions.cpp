// Sensor-network scenario (paper Section 2, Query 3): a 100 m x 100 m grid
// of sensors; a "fire" triggers a contiguous patch of sensors, the region
// view grows from the seed, and the region-size aggregate tracks it as the
// fire spreads and is extinguished. The query is compiled from Datalog;
// the sensor deployment (seed and proximity EDBs) comes from
// EngineOptions::field.

#include <cstdio>

#include "engine/engine.h"
#include "topology/sensor_grid.h"

int main() {
  recnet::SensorGridOptions grid;
  grid.grid_dim = 10;    // 100 sensors.
  grid.k = 20.0;         // Paper's contiguity threshold.
  grid.num_seeds = 5;    // Five monitored regions.
  grid.seed = 42;
  recnet::SensorField field = recnet::MakeSensorGrid(grid);

  std::printf("sensor field: %d sensors, %zu regions, seeds at:",
              field.num_sensors, field.seed_sensors.size());
  for (int s : field.seed_sensors) std::printf(" %d", s);
  std::printf("\n");

  recnet::EngineOptions options;
  options.field = field;
  options.runtime.prov = recnet::ProvMode::kAbsorption;
  options.runtime.ship = recnet::ShipMode::kLazy;
  options.runtime.num_physical = 12;

  // Query 3: the region grows from a triggered seed along the proximity
  // EDB (the paper's distance(x,y) < k guard, precomputed into `near`).
  auto engine = recnet::Engine::Compile(R"(
    activeRegion(r,x) :- seed(r,x), triggered(x).
    activeRegion(r,y) :- activeRegion(r,x), triggered(x), near(x,y).
    regionSizes(r,count<x>) :- activeRegion(r,x).
  )", options);
  if (!engine.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  recnet::Engine& regions = **engine;

  // Ignite around seed 0: trigger the seed and everything within 25 m.
  int seed0 = field.seed_sensors[0];
  regions.Insert("triggered", {double(seed0)});
  for (int nb : field.neighbors[static_cast<size_t>(seed0)]) {
    regions.Insert("triggered", {double(nb)});
  }
  if (!regions.Apply().ok()) return 1;
  auto size0 = regions.Lookup("regionSizes", {0});
  std::printf("after ignition: region 0 has %lld sensors\n",
              size0.ok() ? (long long)size0->IntAt(1) : 0LL);

  // The fire spreads: trigger second-ring sensors.
  for (int nb : field.neighbors[static_cast<size_t>(seed0)]) {
    for (int nb2 : field.neighbors[static_cast<size_t>(nb)]) {
      regions.Insert("triggered", {double(nb2)});
    }
  }
  if (!regions.Apply().ok()) return 1;
  size0 = regions.Lookup("regionSizes", {0});
  std::printf("after spread: region 0 has %lld sensors\n",
              size0.ok() ? (long long)size0->IntAt(1) : 0LL);
  std::printf("all region sizes:");
  auto sizes = regions.Scan("regionSizes");
  if (!sizes.ok()) return 1;
  for (const recnet::Tuple& t : *sizes) {
    std::printf(" #%lld=%lld", (long long)t.IntAt(0), (long long)t.IntAt(1));
  }
  std::printf("\n");

  // Extinguish: sensors stop reporting (soft-state expiry = deletion).
  for (int s = 0; s < field.num_sensors; ++s) {
    regions.Delete("triggered", {double(s)});
  }
  if (!regions.Apply().ok()) return 1;
  size0 = regions.Lookup("regionSizes", {0});
  std::printf("after extinguishing: region 0 has %lld sensors\n",
              size0.ok() ? (long long)size0->IntAt(1) : 0LL);

  std::printf("totals: %s\n", regions.Metrics().ToString().c_str());
  return 0;
}
