// Quickstart: maintain a distributed reachability view (paper Query 1) with
// absorption provenance, then watch a deletion get handled incrementally —
// no over-delete / re-derive.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/example_quickstart

#include <cstdio>

#include "engine/views.h"

int main() {
  // Four logical query-processing nodes; absorption provenance + lazy
  // MinShip (the paper's best configuration).
  recnet::RuntimeOptions options;
  options.prov = recnet::ProvMode::kAbsorption;
  options.ship = recnet::ShipMode::kLazy;
  options.num_physical = 4;

  recnet::ReachabilityView view(4, options);

  // A small network: 0 -> 1 -> 2 -> 3, plus a redundant edge 0 -> 2.
  view.InsertLink(0, 1);
  view.InsertLink(1, 2);
  view.InsertLink(2, 3);
  view.InsertLink(0, 2);
  if (!view.Apply().ok()) return 1;

  std::printf("reachable(0, 3) = %s\n", view.IsReachable(0, 3) ? "yes" : "no");
  std::printf("nodes reachable from 0:");
  for (int n : view.ReachableFrom(0)) std::printf(" %d", n);
  std::printf("\n");

  // Why is 3 reachable from 0? (one witness from the provenance BDD)
  if (auto why = view.Why(0, 3)) {
    std::printf("witness links for reachable(0, 3):");
    for (auto [s, d] : *why) std::printf(" %d->%d", s, d);
    std::printf("\n");
  }

  // Delete the redundant link 1 -> 2: reachability survives via 0 -> 2.
  view.DeleteLink(1, 2);
  if (!view.Apply().ok()) return 1;
  std::printf("after deleting 1->2: reachable(0, 3) = %s (still derivable)\n",
              view.IsReachable(0, 3) ? "yes" : "no");

  // Delete the bridge 2 -> 3: now 3 is unreachable.
  view.DeleteLink(2, 3);
  if (!view.Apply().ok()) return 1;
  std::printf("after deleting 2->3: reachable(0, 3) = %s\n",
              view.IsReachable(0, 3) ? "yes" : "no");

  recnet::RunMetrics m = view.Metrics();
  std::printf("totals: %s\n", m.ToString().c_str());
  return 0;
}
