// Quickstart: compile the paper's Query 1 to a distributed reachability view
// with absorption provenance, then watch a deletion get handled
// incrementally — no over-delete / re-derive.
//
// Build & run:   cmake -B build -S . && cmake --build build
//                ./build/example_quickstart

#include <cstdio>

#include "engine/engine.h"

int main() {
  // Four logical query-processing nodes; absorption provenance + lazy
  // MinShip (the paper's best configuration).
  recnet::EngineOptions options;
  options.num_nodes = 4;
  options.runtime.prov = recnet::ProvMode::kAbsorption;
  options.runtime.ship = recnet::ShipMode::kLazy;
  options.runtime.num_physical = 4;

  auto engine = recnet::Engine::Compile(R"(
    reachable(x,y) :- link(x,y).
    reachable(x,y) :- link(x,z), reachable(z,y).
  )", options);
  if (!engine.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  recnet::Engine& view = **engine;

  // A small network: 0 -> 1 -> 2 -> 3, plus a redundant edge 0 -> 2.
  view.Insert("link", {0, 1});
  view.Insert("link", {1, 2});
  view.Insert("link", {2, 3});
  view.Insert("link", {0, 2});
  if (!view.Apply().ok()) return 1;

  std::printf("reachable(0, 3) = %s\n",
              *view.Contains("reachable", {0, 3}) ? "yes" : "no");
  std::printf("view contents:");
  auto contents = view.Scan("reachable");
  if (!contents.ok()) return 1;
  for (const recnet::Tuple& t : *contents) {
    std::printf(" %s", t.ToString().c_str());
  }
  std::printf("\n");

  // Why is 3 reachable from 0? (one witness from the provenance BDD)
  auto why = view.Explain("reachable", recnet::Tuple::OfInts({0, 3}));
  if (why.ok()) {
    std::printf("witness links for reachable(0, 3):");
    for (const recnet::Tuple& link : *why) {
      std::printf(" %lld->%lld", (long long)link.IntAt(0),
                  (long long)link.IntAt(1));
    }
    std::printf("\n");
  }

  // Delete the redundant link 1 -> 2: reachability survives via 0 -> 2.
  view.Delete("link", {1, 2});
  if (!view.Apply().ok()) return 1;
  std::printf("after deleting 1->2: reachable(0, 3) = %s (still derivable)\n",
              *view.Contains("reachable", {0, 3}) ? "yes" : "no");

  // Delete the bridge 2 -> 3: now 3 is unreachable.
  view.Delete("link", {2, 3});
  if (!view.Apply().ok()) return 1;
  std::printf("after deleting 2->3: reachable(0, 3) = %s\n",
              *view.Contains("reachable", {0, 3}) ? "yes" : "no");

  recnet::RunMetrics m = view.Metrics();
  std::printf("totals: %s\n", m.ToString().c_str());
  return 0;
}
